//! BLCR-like checkpoint/restart cost model, calibrated to the paper's
//! measurements on the Gideon-II cluster:
//!
//! * **Figure 7** — per-checkpoint cost is linear in task memory size:
//!   `[0.016, 0.99] s` over 10–240 MB on local ramdisk, `[0.25, 2.52] s`
//!   over NFS.
//! * **Table 4** — single checkpoint *operation* time over shared disk,
//!   0.33 s at 10.3 MB up to 6.83 s at 240 MB (used as the service demand
//!   the storage servers process).
//! * **Table 5** — restart cost by migration type: type A (checkpoint in
//!   local ramdisk, must be moved before restarting elsewhere) 0.71–5.69 s;
//!   type B (checkpoint on shared disk) 0.37–2.4 s over 10–240 MB.
//!
//! Cost tables are piecewise-linear interpolated in memory size and
//! extrapolated beyond the measured range; an optional multiplicative jitter
//! reproduces the min/avg/max spreads of Tables 2–3.

use ckpt_stats::rng::Rng64;

/// Where a task's checkpoints are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// The VM's local ramdisk: cheapest checkpoints, no cross-host access.
    Ramdisk,
    /// A single central NFS server shared by the whole cluster.
    CentralNfs,
    /// The paper's distributively-managed NFS: one NFS server per host,
    /// selected uniformly at random per checkpoint.
    DmNfs,
}

impl Device {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Device::Ramdisk => "ramdisk",
            Device::CentralNfs => "NFS",
            Device::DmNfs => "DM-NFS",
        }
    }

    /// The migration type a restart from this device implies (paper §4.2.2):
    /// ramdisk checkpoints restart via migration type A, shared-disk
    /// checkpoints via type B.
    pub fn migration(&self) -> Migration {
        match self {
            Device::Ramdisk => Migration::TypeA,
            Device::CentralNfs | Device::DmNfs => Migration::TypeB,
        }
    }
}

/// Restart migration type (paper Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Migration {
    /// Checkpoint lives in the failed host's ramdisk: move it first.
    TypeA,
    /// Checkpoint lives on shared disk: restart anywhere directly.
    TypeB,
}

/// Piecewise-linear interpolation through `(x, y)` points sorted by `x`,
/// linear extrapolation outside.
fn interp(points: &[(f64, f64)], x: f64) -> f64 {
    debug_assert!(points.len() >= 2);
    let (first, last) = (points[0], points[points.len() - 1]);
    let seg = if x <= first.0 {
        (points[0], points[1])
    } else if x >= last.0 {
        (points[points.len() - 2], last)
    } else {
        let idx = points.partition_point(|p| p.0 < x);
        (points[idx - 1], points[idx])
    };
    let ((x0, y0), (x1, y1)) = seg;
    let t = (x - x0) / (x1 - x0);
    (y0 + t * (y1 - y0)).max(0.0)
}

/// Figure 7(a): per-checkpoint wall-clock cost on local ramdisk (seconds).
const RAMDISK_COST: [(f64, f64); 2] = [(10.0, 0.016), (240.0, 0.99)];

/// Figure 7(b) / Table 2 X=1: per-checkpoint wall-clock cost on NFS
/// (uncontended; contention is the storage server's job).
const NFS_COST: [(f64, f64); 2] = [(10.0, 0.25), (240.0, 2.52)];

/// Table 4: single checkpoint operation time over shared disk (seconds) —
/// the storage service demand.
const SHARED_OP_TIME: [(f64, f64); 12] = [
    (10.3, 0.33),
    (22.3, 0.42),
    (42.3, 0.60),
    (46.3, 0.66),
    (82.4, 1.46),
    (86.4, 1.75),
    (90.4, 2.09),
    (94.4, 2.34),
    (162.0, 3.68),
    (174.0, 4.95),
    (212.0, 5.47),
    (240.0, 6.83),
];

/// Table 5: restart cost for migration type A (seconds).
const RESTART_A: [(f64, f64); 6] = [
    (10.0, 0.71),
    (20.0, 0.84),
    (40.0, 1.23),
    (80.0, 1.87),
    (160.0, 3.22),
    (240.0, 5.69),
];

/// Table 5: restart cost for migration type B (seconds).
const RESTART_B: [(f64, f64); 6] = [
    (10.0, 0.37),
    (20.0, 0.49),
    (40.0, 0.54),
    (80.0, 0.86),
    (160.0, 1.45),
    (240.0, 2.4),
];

/// The BLCR cost model. Stateless; all methods are pure except the jittered
/// variants, which consume randomness from the caller's stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlcrModel;

impl BlcrModel {
    /// Uncontended per-checkpoint wall-clock cost `C` (seconds) for a task
    /// of `mem_mb` on `device`. DM-NFS has the same single-stream cost as
    /// central NFS (same class of server; its advantage is load spreading).
    pub fn checkpoint_cost(&self, device: Device, mem_mb: f64) -> f64 {
        match device {
            Device::Ramdisk => interp(&RAMDISK_COST, mem_mb).max(0.005),
            Device::CentralNfs | Device::DmNfs => interp(&NFS_COST, mem_mb).max(0.01),
        }
    }

    /// Table 4's checkpoint *operation* time (seconds) — the service demand
    /// a shared-disk checkpoint places on a storage server.
    pub fn shared_op_time(&self, mem_mb: f64) -> f64 {
        interp(&SHARED_OP_TIME, mem_mb).max(0.01)
    }

    /// Restart cost `R` (seconds) by migration type (Table 5).
    pub fn restart_cost(&self, migration: Migration, mem_mb: f64) -> f64 {
        match migration {
            Migration::TypeA => interp(&RESTART_A, mem_mb).max(0.01),
            Migration::TypeB => interp(&RESTART_B, mem_mb).max(0.01),
        }
    }

    /// Restart cost for a task checkpointing to `device`.
    pub fn restart_cost_for_device(&self, device: Device, mem_mb: f64) -> f64 {
        self.restart_cost(device.migration(), mem_mb)
    }

    /// Multiplicative jitter factor reproducing the measured min/avg/max
    /// spreads (Tables 2–3 show roughly ±10–15 % around the mean). Uniform
    /// on [0.88, 1.12]; mean ≈ 1.
    pub fn jitter<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.next_in(0.88, 1.12)
    }

    /// Jittered checkpoint cost (for contention experiments).
    pub fn checkpoint_cost_jittered<R: Rng64 + ?Sized>(
        &self,
        device: Device,
        mem_mb: f64,
        rng: &mut R,
    ) -> f64 {
        self.checkpoint_cost(device, mem_mb) * self.jitter(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_stats::rng::Xoshiro256StarStar;

    const M: BlcrModel = BlcrModel;

    #[test]
    fn ramdisk_endpoints_match_paper() {
        assert!((M.checkpoint_cost(Device::Ramdisk, 10.0) - 0.016).abs() < 1e-9);
        assert!((M.checkpoint_cost(Device::Ramdisk, 240.0) - 0.99).abs() < 1e-9);
    }

    #[test]
    fn nfs_endpoints_match_paper() {
        assert!((M.checkpoint_cost(Device::CentralNfs, 10.0) - 0.25).abs() < 1e-9);
        assert!((M.checkpoint_cost(Device::CentralNfs, 240.0) - 2.52).abs() < 1e-9);
    }

    #[test]
    fn nfs_dmnfs_same_uncontended_cost() {
        for &m in &[10.0, 80.0, 240.0] {
            assert_eq!(
                M.checkpoint_cost(Device::CentralNfs, m),
                M.checkpoint_cost(Device::DmNfs, m)
            );
        }
    }

    #[test]
    fn shared_disk_cost_above_ramdisk() {
        for mem in [10.0, 55.0, 160.0, 240.0] {
            assert!(
                M.checkpoint_cost(Device::CentralNfs, mem)
                    > M.checkpoint_cost(Device::Ramdisk, mem)
            );
        }
    }

    #[test]
    fn table4_op_times_reproduced() {
        for &(mem, t) in &SHARED_OP_TIME {
            assert!((M.shared_op_time(mem) - t).abs() < 1e-9, "mem = {mem}");
        }
        // Interpolation between table rows is monotone here.
        assert!(M.shared_op_time(100.0) > M.shared_op_time(50.0));
    }

    #[test]
    fn table5_restart_costs_reproduced() {
        for &(mem, t) in &RESTART_A {
            assert!((M.restart_cost(Migration::TypeA, mem) - t).abs() < 1e-9);
        }
        for &(mem, t) in &RESTART_B {
            assert!((M.restart_cost(Migration::TypeB, mem) - t).abs() < 1e-9);
        }
    }

    #[test]
    fn migration_a_dearer_than_b() {
        // "task restarting cost with migration type A is much higher than
        // with migration type B" (paper §4.2.2).
        for mem in [10.0, 40.0, 160.0, 240.0, 500.0] {
            assert!(
                M.restart_cost(Migration::TypeA, mem) > M.restart_cost(Migration::TypeB, mem),
                "mem = {mem}"
            );
        }
    }

    #[test]
    fn device_migration_mapping() {
        assert_eq!(Device::Ramdisk.migration(), Migration::TypeA);
        assert_eq!(Device::CentralNfs.migration(), Migration::TypeB);
        assert_eq!(Device::DmNfs.migration(), Migration::TypeB);
    }

    #[test]
    fn extrapolation_stays_positive() {
        assert!(M.checkpoint_cost(Device::Ramdisk, 1.0) > 0.0);
        assert!(M.checkpoint_cost(Device::Ramdisk, 960.0) > 0.99);
        assert!(M.restart_cost(Migration::TypeB, 960.0) > 2.4);
    }

    #[test]
    fn jitter_centred_and_bounded() {
        let mut rng = Xoshiro256StarStar::new(5);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let j = M.jitter(&mut rng);
            assert!((0.88..1.12).contains(&j));
            sum += j;
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn interp_midpoint() {
        let pts = [(0.0, 0.0), (10.0, 10.0)];
        assert!((interp(&pts, 5.0) - 5.0).abs() < 1e-12);
        assert!((interp(&pts, -5.0) - 0.0).abs() < 1e-12); // clamped at 0 by max
        assert!((interp(&pts, 20.0) - 20.0).abs() < 1e-12);
    }
}
