//! The discrete-event queue: a binary heap ordered on `(time, sequence)`
//! with O(1) lazy cancellation.
//!
//! Sequence numbers break time ties in insertion order, which — combined
//! with integer [`SimTime`] — makes event processing deterministic.
//! Cancellation marks an event id dead; dead events are skipped at pop time
//! (the standard lazy-deletion technique, needed by the processor-sharing
//! storage servers whose completion events are re-estimated whenever their
//! membership changes).

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    // Dense liveness flags indexed by sequence number: cancellation is a
    // store; pop skips dead entries. Memory is proportional to the number of
    // events ever scheduled, reclaimed when the queue drains.
    alive: Vec<bool>,
    live_count: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            alive: Vec::new(),
            live_count: 0,
        }
    }

    /// Schedule `payload` at `time`; returns an id usable with [`cancel`].
    ///
    /// [`cancel`]: EventQueue::cancel
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.alive.push(true);
        self.live_count += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
        EventId(seq)
    }

    /// Cancel a scheduled event. Returns `true` if the event was still
    /// pending (and is now dead), `false` if it had already fired or been
    /// cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.alive.get_mut(id.0 as usize) {
            Some(flag) if *flag => {
                *flag = false;
                self.live_count -= 1;
                true
            }
            _ => false,
        }
    }

    /// Pop the earliest live event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            let idx = entry.seq as usize;
            if self.alive[idx] {
                self.alive[idx] = false;
                self.live_count -= 1;
                if self.live_count == 0 {
                    // Everything pending is gone; reclaim bookkeeping.
                    self.heap.clear();
                }
                return Some((entry.time, EventId(entry.seq), entry.payload));
            }
        }
        None
    }

    /// Earliest live event time without popping.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop dead entries off the top so peek is accurate.
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.alive[entry.seq as usize] {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (pending, uncancelled) events.
    #[inline]
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Whether no live events remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), 1);
        q.schedule(t(1.0), 2);
        q.schedule(t(1.0), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a)); // double cancel is a no-op
        assert_eq!(q.len(), 1);
        let (_, _, p) = q.pop().unwrap();
        assert_eq!(p, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_returns_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        let (_, id, _) = q.pop().unwrap();
        assert_eq!(id, a);
        assert!(!q.cancel(a));
    }

    #[test]
    fn peek_time_skips_dead() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(5.0), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5.0)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10.0), 10);
        q.schedule(t(1.0), 1);
        assert_eq!(q.pop().unwrap().2, 1);
        q.schedule(t(5.0), 5);
        assert_eq!(q.pop().unwrap().2, 5);
        assert_eq!(q.pop().unwrap().2, 10);
    }

    #[test]
    fn many_events_stress() {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            // Pseudo-shuffled times.
            let tt = (i * 7919) % 10_007;
            q.schedule(SimTime(tt), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((time, _, _)) = q.pop() {
            assert!(time >= last);
            last = time;
            count += 1;
        }
        assert_eq!(count, 10_000);
    }
}
