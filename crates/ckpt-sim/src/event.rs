//! The discrete-event queues: binary heaps ordered on `(time, sequence)`.
//!
//! Sequence numbers break time ties in insertion order, which — combined
//! with integer [`SimTime`] — makes event processing deterministic.
//!
//! Two implementations share that ordering contract:
//!
//! * [`EventQueue`] — the general queue with O(1) lazy cancellation
//!   (dead events are skipped at pop time), for callers that need to
//!   retract scheduled events.
//! * [`FastQueue`] — the hot-path queue behind the cluster engine: an
//!   indexed Vec-backed binary heap whose entries carry one packed
//!   `(time, seq)` `u128` key, with no liveness bookkeeping at all.
//!   Engines built on it (see [`crate::cluster`]) invalidate superseded
//!   events with epoch/generation counters checked at dispatch instead of
//!   cancelling them, so the pop path is a single sift with inline
//!   payloads — no side-table lookups, no allocation growth proportional
//!   to events ever scheduled.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    // Dense liveness flags indexed by sequence number: cancellation is a
    // store; pop skips dead entries. Memory is proportional to the number of
    // events ever scheduled, reclaimed when the queue drains.
    alive: Vec<bool>,
    live_count: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            alive: Vec::new(),
            live_count: 0,
        }
    }

    /// Schedule `payload` at `time`; returns an id usable with [`cancel`].
    ///
    /// [`cancel`]: EventQueue::cancel
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.alive.push(true);
        self.live_count += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
        EventId(seq)
    }

    /// Cancel a scheduled event. Returns `true` if the event was still
    /// pending (and is now dead), `false` if it had already fired or been
    /// cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.alive.get_mut(id.0 as usize) {
            Some(flag) if *flag => {
                *flag = false;
                self.live_count -= 1;
                true
            }
            _ => false,
        }
    }

    /// Pop the earliest live event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            let idx = entry.seq as usize;
            if self.alive[idx] {
                self.alive[idx] = false;
                self.live_count -= 1;
                if self.live_count == 0 {
                    // Everything pending is gone; reclaim bookkeeping.
                    self.heap.clear();
                }
                return Some((entry.time, EventId(entry.seq), entry.payload));
            }
        }
        None
    }

    /// Earliest live event time without popping.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop dead entries off the top so peek is accurate.
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.alive[entry.seq as usize] {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (pending, uncancelled) events.
    #[inline]
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Whether no live events remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }
}

/// The hot-path future-event list: a Vec-backed binary heap whose entries
/// are ordered by one packed `(time, seq)` `u128` key.
///
/// Invariants:
///
/// * **Stable tie-breaking** — events scheduled earlier pop first among
///   equal times (`seq` is a monotone insertion counter), exactly like
///   [`EventQueue`]; replacing one with the other never changes the order
///   of surviving events.
/// * **No cancellation** — superseded events must be ignored by the
///   consumer (epoch/generation checks at dispatch). In exchange, pop is
///   one sift over a dense `Vec` with the payload inline, and memory is
///   proportional to *live* events only.
#[derive(Debug)]
pub struct FastQueue<E> {
    /// Min-heap over `(key, payload)`; `key = time << 64 | seq`.
    heap: Vec<(u128, E)>,
    next_seq: u64,
}

impl<E> Default for FastQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> FastQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        Self {
            heap: Vec::new(),
            next_seq: 0,
        }
    }

    /// Empty queue with room for `n` events before reallocating.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            heap: Vec::with_capacity(n),
            next_seq: 0,
        }
    }

    #[inline]
    fn key(&mut self, time: SimTime) -> u128 {
        let key = ((time.0 as u128) << 64) | self.next_seq as u128;
        self.next_seq += 1;
        key
    }

    /// Schedule `payload` at `time`.
    #[inline]
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        let key = self.key(time);
        self.heap.push((key, payload));
        // Sift up.
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent].0 <= self.heap[i].0 {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    /// Earliest pending event time, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| SimTime((e.0 >> 64) as u64))
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let n = self.heap.len();
        if n == 0 {
            return None;
        }
        let (key, payload) = self.heap.swap_remove(0);
        // Sift the (former) last element down from the root.
        let n = self.heap.len();
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let c = if r < n && self.heap[r].0 < self.heap[l].0 {
                r
            } else {
                l
            };
            if self.heap[i].0 <= self.heap[c].0 {
                break;
            }
            self.heap.swap(i, c);
            i = c;
        }
        Some((SimTime((key >> 64) as u64), payload))
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), 1);
        q.schedule(t(1.0), 2);
        q.schedule(t(1.0), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a)); // double cancel is a no-op
        assert_eq!(q.len(), 1);
        let (_, _, p) = q.pop().unwrap();
        assert_eq!(p, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_returns_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        let (_, id, _) = q.pop().unwrap();
        assert_eq!(id, a);
        assert!(!q.cancel(a));
    }

    #[test]
    fn peek_time_skips_dead() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(5.0), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5.0)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10.0), 10);
        q.schedule(t(1.0), 1);
        assert_eq!(q.pop().unwrap().2, 1);
        q.schedule(t(5.0), 5);
        assert_eq!(q.pop().unwrap().2, 5);
        assert_eq!(q.pop().unwrap().2, 10);
    }

    #[test]
    fn fast_queue_pops_in_time_order_with_stable_ties() {
        let mut q = FastQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a1");
        q.schedule(t(1.0), "a2");
        q.schedule(t(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a1", "a2", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn fast_queue_peek_matches_pop() {
        let mut q = FastQueue::with_capacity(4);
        assert!(q.peek_time().is_none());
        q.schedule(t(5.0), 5);
        q.schedule(t(2.0), 2);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert_eq!(q.pop().unwrap(), (t(2.0), 2));
        assert_eq!(q.peek_time(), Some(t(5.0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn fast_queue_matches_event_queue_order() {
        // The two implementations must agree on the full pop sequence,
        // including tie-breaks, for any interleaving of schedules and pops.
        let mut fast = FastQueue::new();
        let mut slow = EventQueue::new();
        let mut mix: u64 = 0x9E3779B97F4A7C15;
        for i in 0..5_000u64 {
            mix = mix.wrapping_mul(6364136223846793005).wrapping_add(1);
            let time = SimTime(mix % 997);
            fast.schedule(time, i);
            slow.schedule(time, i);
            if mix.is_multiple_of(3) {
                assert_eq!(fast.pop(), slow.pop().map(|(t, _, p)| (t, p)));
            }
        }
        loop {
            let f = fast.pop();
            let s = slow.pop().map(|(t, _, p)| (t, p));
            assert_eq!(f, s);
            if f.is_none() {
                break;
            }
        }
    }

    #[test]
    fn many_events_stress() {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            // Pseudo-shuffled times.
            let tt = (i * 7919) % 10_007;
            q.schedule(SimTime(tt), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((time, _, _)) = q.pop() {
            assert!(time >= last);
            last = time;
            count += 1;
        }
        assert_eq!(count, 10_000);
    }
}
