//! Simulation time: integer microseconds.
//!
//! The engine orders events on a `(time, sequence)` key; using integer
//! microseconds (instead of `f64` seconds) makes that ordering total and
//! platform-independent, which is what keeps whole-cluster replays
//! bit-for-bit reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A duration in simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Convert from seconds (rounds to the nearest microsecond; negative
    /// values clamp to zero).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e6).round() as u64)
    }

    /// Convert to fractional seconds.
    #[inline]
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference as a duration.
    #[inline]
    pub fn saturating_sub(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Convert from seconds (rounds to the nearest microsecond; negative
    /// values clamp to zero).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Convert to fractional seconds.
    #[inline]
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_seconds() {
        let t = SimTime::from_secs_f64(1234.567891);
        assert!((t.as_secs_f64() - 1234.567891).abs() < 1e-6);
    }

    #[test]
    fn negative_clamps_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-5.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs_f64(10.0) + SimDuration::from_secs_f64(2.5);
        assert!((t.as_secs_f64() - 12.5).abs() < 1e-9);
        let d = t - SimTime::from_secs_f64(10.0);
        assert!((d.as_secs_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_secs_f64(1.0) - SimTime::from_secs_f64(2.0);
    }

    #[test]
    fn saturating_sub_clamps() {
        let d = SimTime::from_secs_f64(1.0).saturating_sub(SimTime::from_secs_f64(2.0));
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs_f64(1.0);
        let b = SimTime::from_secs_f64(1.000001);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.5)), "1.500000s");
    }
}
