//! Checkpoint storage servers with processor-sharing contention.
//!
//! The paper measures (Table 2) that simultaneous checkpoints to one NFS
//! server slow each other down roughly linearly with the parallel degree
//! (1.67 s alone → 8.95 s at degree 5 for 160 MB), while the local ramdisk
//! is unaffected, and that the proposed **DM-NFS** — one NFS server per
//! physical host, picked uniformly at random per checkpoint — keeps costs
//! flat (Table 3).
//!
//! A processor-sharing (PS) server reproduces the NFS behaviour exactly:
//! `n` concurrent operations each receive `1/n` of the server bandwidth, so
//! an operation that takes `d` seconds alone takes `n·d` under sustained
//! degree-`n` contention. [`PsResource`] implements PS with exact
//! re-scheduling: whenever the active set changes, remaining service is
//! advanced and the next completion re-estimated (the standard DES treatment
//! of PS queues); stale completion events are invalidated by a generation
//! counter.

use crate::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Identifier of an in-flight storage operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpId(pub u64);

/// A processor-sharing server: aggregate service rate `rate` (units of
/// service per second — here "seconds of uncontended work", so rate 1.0
/// means one uncontended operation-second per wall-second).
#[derive(Debug, Clone)]
pub struct PsResource {
    rate: f64,
    ops: HashMap<OpId, f64>, // remaining service (uncontended seconds)
    last_update: SimTime,
    generation: u64,
}

impl PsResource {
    /// Create a PS server with the given aggregate service rate (> 0).
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "PS rate must be positive");
        Self {
            rate,
            ops: HashMap::new(),
            last_update: SimTime::ZERO,
            generation: 0,
        }
    }

    /// Number of active operations.
    #[inline]
    pub fn active(&self) -> usize {
        self.ops.len()
    }

    /// Return the server to its just-constructed state (no ops, time at
    /// zero, generation 0), keeping the allocated op table — so repeated
    /// measurement rounds can reuse one server bank instead of
    /// reallocating it per round.
    pub fn reset(&mut self) {
        self.ops.clear();
        self.last_update = SimTime::ZERO;
        self.generation = 0;
    }

    /// Current generation; completion events scheduled for an older
    /// generation are stale and must be ignored.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Advance internal remaining-service state to `now`.
    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "time went backwards");
        let dt = (now - self.last_update).as_secs_f64();
        if dt > 0.0 && !self.ops.is_empty() {
            let per_op = self.rate * dt / self.ops.len() as f64;
            for rem in self.ops.values_mut() {
                *rem = (*rem - per_op).max(0.0);
            }
        }
        self.last_update = now;
    }

    /// Add an operation demanding `service_secs` of uncontended service.
    /// Bumps the generation (previously scheduled completions are stale).
    pub fn add(&mut self, now: SimTime, id: OpId, service_secs: f64) {
        assert!(service_secs > 0.0, "service demand must be positive");
        self.advance(now);
        let prev = self.ops.insert(id, service_secs);
        assert!(prev.is_none(), "duplicate op id");
        self.generation += 1;
    }

    /// Remove an operation (completion or abort). Returns the remaining
    /// service it still had. Bumps the generation.
    pub fn remove(&mut self, now: SimTime, id: OpId) -> Option<f64> {
        self.advance(now);
        let rem = self.ops.remove(&id);
        if rem.is_some() {
            self.generation += 1;
        }
        rem
    }

    /// The operation that will finish next under the *current* membership,
    /// and its completion time. `None` when idle.
    pub fn next_completion(&self, now: SimTime) -> Option<(OpId, SimTime)> {
        // Minimum remaining service, tie-broken by op id for determinism.
        let (&id, &rem) = self.ops.iter().min_by(|(ida, ra), (idb, rb)| {
            ra.partial_cmp(rb).unwrap().then_with(|| ida.0.cmp(&idb.0))
        })?;
        let n = self.ops.len() as f64;
        let dt = rem * n / self.rate;
        // Note: `now` may be ahead of last_update if the caller advanced
        // time without membership changes; advance logically first.
        let base = now.max(self.last_update);
        let extra = (base - self.last_update).as_secs_f64();
        let rem_at_base = (rem - self.rate * extra / n).max(0.0);
        let dt_at_base = rem_at_base * n / self.rate;
        let _ = dt;
        Some((id, base + SimDuration::from_secs_f64(dt_at_base)))
    }
}

/// A bank of PS servers modelling the cluster's checkpoint storage:
/// one server for [`Central`] NFS, one per host for DM-NFS.
///
/// [`Central`]: StorageBank::central
#[derive(Debug, Clone)]
pub struct StorageBank {
    servers: Vec<PsResource>,
}

impl StorageBank {
    /// One central NFS server with the given rate.
    pub fn central(rate: f64) -> Self {
        Self {
            servers: vec![PsResource::new(rate)],
        }
    }

    /// DM-NFS: `n_hosts` independent servers, each with the given rate.
    pub fn dm_nfs(n_hosts: usize, rate: f64) -> Self {
        assert!(n_hosts > 0, "need at least one host");
        Self {
            servers: (0..n_hosts).map(|_| PsResource::new(rate)).collect(),
        }
    }

    /// Number of servers.
    #[inline]
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the bank has no servers (never true for a constructed bank).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Access server `idx`.
    pub fn server(&self, idx: usize) -> &PsResource {
        &self.servers[idx]
    }

    /// Mutable access to server `idx`.
    pub fn server_mut(&mut self, idx: usize) -> &mut PsResource {
        &mut self.servers[idx]
    }

    /// Total active operations across servers.
    pub fn total_active(&self) -> usize {
        self.servers.iter().map(|s| s.active()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn single_op_takes_nominal_time() {
        let mut ps = PsResource::new(1.0);
        ps.add(t(0.0), OpId(1), 2.0);
        let (id, done) = ps.next_completion(t(0.0)).unwrap();
        assert_eq!(id, OpId(1));
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn two_ops_share_bandwidth() {
        // Two identical ops started together each take twice as long.
        let mut ps = PsResource::new(1.0);
        ps.add(t(0.0), OpId(1), 2.0);
        ps.add(t(0.0), OpId(2), 2.0);
        let (_, done) = ps.next_completion(t(0.0)).unwrap();
        assert!((done.as_secs_f64() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn late_joiner_slows_first_op() {
        // Op A (2 s demand) runs alone for 1 s (1 s served), then op B joins:
        // remaining 1 s of A is served at rate 1/2 ⇒ A completes at 3 s.
        let mut ps = PsResource::new(1.0);
        ps.add(t(0.0), OpId(1), 2.0);
        ps.add(t(1.0), OpId(2), 2.0);
        let (id, done) = ps.next_completion(t(1.0)).unwrap();
        assert_eq!(id, OpId(1));
        assert!((done.as_secs_f64() - 3.0).abs() < 1e-6, "done = {done}");
    }

    #[test]
    fn removal_speeds_up_survivor() {
        let mut ps = PsResource::new(1.0);
        ps.add(t(0.0), OpId(1), 4.0);
        ps.add(t(0.0), OpId(2), 4.0);
        // At t=2 each has 1+... let's see: 2 s at rate 1/2 each ⇒ 3 remaining.
        let rem = ps.remove(t(2.0), OpId(2)).unwrap();
        assert!((rem - 3.0).abs() < 1e-6);
        let (_, done) = ps.next_completion(t(2.0)).unwrap();
        // Survivor has 3 s remaining at full rate ⇒ completes at 5 s.
        assert!((done.as_secs_f64() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn generation_bumps_on_membership_change() {
        let mut ps = PsResource::new(1.0);
        let g0 = ps.generation();
        ps.add(t(0.0), OpId(1), 1.0);
        assert!(ps.generation() > g0);
        let g1 = ps.generation();
        ps.remove(t(0.5), OpId(1));
        assert!(ps.generation() > g1);
    }

    #[test]
    fn sustained_degree_n_multiplies_duration() {
        // The Table 2 shape: five 1.67 s ops started together each take
        // 5 × 1.67 s on one server.
        let mut ps = PsResource::new(1.0);
        for i in 0..5 {
            ps.add(t(0.0), OpId(i), 1.67);
        }
        let (_, done) = ps.next_completion(t(0.0)).unwrap();
        assert!((done.as_secs_f64() - 8.35).abs() < 1e-6, "done = {done}");
    }

    #[test]
    fn dm_nfs_spreads_load() {
        // Five ops over five servers: each completes in nominal time —
        // the Table 3 flatness.
        let mut bank = StorageBank::dm_nfs(5, 1.0);
        for i in 0..5usize {
            bank.server_mut(i).add(t(0.0), OpId(i as u64), 1.67);
        }
        for i in 0..5usize {
            let (_, done) = bank.server(i).next_completion(t(0.0)).unwrap();
            assert!((done.as_secs_f64() - 1.67).abs() < 1e-6);
        }
        assert_eq!(bank.total_active(), 5);
        assert_eq!(bank.len(), 5);
    }

    #[test]
    fn idle_server_has_no_completion() {
        let ps = PsResource::new(2.0);
        assert!(ps.next_completion(t(0.0)).is_none());
        assert_eq!(ps.active(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate op id")]
    fn duplicate_op_panics() {
        let mut ps = PsResource::new(1.0);
        ps.add(t(0.0), OpId(1), 1.0);
        ps.add(t(0.0), OpId(1), 1.0);
    }

    #[test]
    fn remove_unknown_returns_none() {
        let mut ps = PsResource::new(1.0);
        assert!(ps.remove(t(0.0), OpId(9)).is_none());
    }

    #[test]
    fn next_completion_with_advanced_now() {
        // Caller asks for completion at a later `now` without membership
        // change: remaining service must be discounted by the elapsed time.
        let mut ps = PsResource::new(1.0);
        ps.add(t(0.0), OpId(1), 2.0);
        let (_, done) = ps.next_completion(t(1.5)).unwrap();
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-6, "done = {done}");
    }
}
