//! Dense, struct-of-arrays task state for the cluster engine.
//!
//! The hot loop of [`crate::cluster`] touches a handful of fields of a
//! "random" task on every event. Keeping each field in its own dense
//! `Vec`, indexed by a [`TaskId`] assigned in trace order, means an event
//! touches only the cache lines of the fields it reads instead of a whole
//! ~200-byte task struct, and the per-task heap allocations of the old
//! representation (a `VecDeque` of kill positions per task) collapse into
//! one shared arena.
//!
//! Invariants:
//!
//! * **Dense ids** — `TaskId(i)` is the `i`-th task in trace order
//!   (jobs in trace order, tasks in job order); ids are stable for the
//!   lifetime of the store and index every column directly.
//! * **Epoch staleness** — `epoch[t]` is bumped on every state
//!   transition of task `t`; an event carrying an older epoch is stale
//!   and must be dropped by the consumer.
//! * **Kill-plan arena** — each task's pre-planned kill positions are the
//!   sorted slice `kill_pos[kill_off[t] .. kill_off[t + 1]]`;
//!   `kill_cursor[t]` points at the next unconsumed position.
//! * **Host occupancy** — `host[t] != NO_HOST` exactly while the task
//!   holds a VM slot; `occupants[h]` lists those tasks and `host_slot[t]`
//!   is the task's position in that list (swap-remove bookkeeping).

use crate::blcr::Device;
use crate::controller::Controller;
use crate::storage::OpId;
use crate::task_sim::TaskOutcome;
use crate::time::SimTime;

/// Dense index of a task within a [`TaskStore`] (trace order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(pub u32);

/// Sentinel for "no host" in [`TaskStore::host`].
pub const NO_HOST: u32 = u32::MAX;

/// Sentinel for "no successor" in [`TaskStore::next_in_job`].
pub const NO_TASK: u32 = u32::MAX;

/// Lifecycle of one task inside the cluster engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Not yet ready (ST successor waiting on its predecessor).
    NotReady,
    /// In the scheduler queue.
    Queued,
    /// Paying the restart (restore/migration) cost after placement.
    Restoring,
    /// Executing productive work.
    Running,
    /// Writing a checkpoint.
    Checkpointing,
    /// Finished.
    Done,
}

/// Struct-of-arrays task state. Every column is indexed by [`TaskId`].
///
/// Columns are grouped into immutable plan data (filled at build time and
/// never written again) and mutable runtime state. All columns are `pub`
/// within the crate's simulation modules; the store is data, the engine
/// is behavior.
#[derive(Debug)]
pub struct TaskStore {
    // --- immutable plan data ---
    /// Productive length `Te` (seconds).
    pub te: Vec<f64>,
    /// Memory footprint (MB) — the placement constraint.
    pub mem_mb: Vec<f64>,
    /// Chosen checkpoint device.
    pub device: Vec<Device>,
    /// Per-checkpoint cost `C` (uncontended seconds).
    pub ckpt_cost: Vec<f64>,
    /// Per-restart cost `R` (seconds).
    pub restart_cost: Vec<f64>,
    /// Checkpoint-placement controller.
    pub controller: Vec<Controller>,
    /// Dense id of the next task of a sequential job (`NO_TASK` if none).
    pub next_in_job: Vec<u32>,
    /// Start of each task's slice in `kill_pos`; `kill_off.len() ==
    /// tasks + 1` so `kill_off[t]..kill_off[t+1]` is always valid.
    pub kill_off: Vec<u32>,
    /// Flat arena of pre-planned kill positions (busy-time offsets,
    /// sorted within each task's slice).
    pub kill_pos: Vec<f64>,

    // --- mutable runtime state ---
    /// Lifecycle state.
    pub state: Vec<TaskState>,
    /// Bumped on every state transition; stale events are dropped.
    pub epoch: Vec<u32>,
    /// Durable (checkpointed) progress.
    pub durable: Vec<f64>,
    /// Progress at the start of the current phase.
    pub run_base: Vec<f64>,
    /// Wall time the current busy phase started.
    pub phase_start: Vec<SimTime>,
    /// Cumulative busy (run + checkpoint) time consumed so far.
    pub busy: Vec<f64>,
    /// Next unconsumed index into this task's `kill_pos` slice.
    pub kill_cursor: Vec<u32>,
    /// Shared-disk checkpoint in flight: `(server, op, started)`.
    pub storage_op: Vec<Option<(u32, OpId, SimTime)>>,
    /// When the task last became ready (for wait accounting).
    pub ready_at: Vec<SimTime>,
    /// First time the task became ready (span accounting); `SimTime::ZERO`
    /// guarded by `first_ready_set`.
    pub first_ready: Vec<SimTime>,
    /// Whether `first_ready` has been recorded.
    pub first_ready_set: Vec<bool>,
    /// Completion time (valid only in `Done` state).
    pub done_at: Vec<SimTime>,
    /// Accumulated scheduler-queue wait (seconds).
    pub wait_time: Vec<f64>,
    /// Running outcome accounting.
    pub outcome: Vec<TaskOutcome>,
    /// Host currently holding the task's VM slot (`NO_HOST` if none).
    pub host: Vec<u32>,
    /// Index of the task within `occupants[host]` (swap-remove support).
    pub host_slot: Vec<u32>,
}

impl TaskStore {
    /// An empty store with capacity for `n` tasks.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            te: Vec::with_capacity(n),
            mem_mb: Vec::with_capacity(n),
            device: Vec::with_capacity(n),
            ckpt_cost: Vec::with_capacity(n),
            restart_cost: Vec::with_capacity(n),
            controller: Vec::with_capacity(n),
            next_in_job: Vec::with_capacity(n),
            kill_off: Vec::with_capacity(n + 1),
            kill_pos: Vec::new(),
            state: Vec::with_capacity(n),
            epoch: Vec::with_capacity(n),
            durable: Vec::with_capacity(n),
            run_base: Vec::with_capacity(n),
            phase_start: Vec::with_capacity(n),
            busy: Vec::with_capacity(n),
            kill_cursor: Vec::with_capacity(n),
            storage_op: Vec::with_capacity(n),
            ready_at: Vec::with_capacity(n),
            first_ready: Vec::with_capacity(n),
            first_ready_set: Vec::with_capacity(n),
            done_at: Vec::with_capacity(n),
            wait_time: Vec::with_capacity(n),
            outcome: Vec::with_capacity(n),
            host: Vec::with_capacity(n),
            host_slot: Vec::with_capacity(n),
        }
    }

    /// Number of tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.te.len()
    }

    /// Whether the store holds no tasks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.te.is_empty()
    }

    /// Append one task (plan data + zeroed runtime state); the kill plan
    /// is appended to the shared arena. Returns the new task's id.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        te: f64,
        mem_mb: f64,
        device: Device,
        ckpt_cost: f64,
        restart_cost: f64,
        controller: Controller,
        kills: &[f64],
    ) -> TaskId {
        let id = TaskId(self.len() as u32);
        self.te.push(te);
        self.mem_mb.push(mem_mb);
        self.device.push(device);
        self.ckpt_cost.push(ckpt_cost);
        self.restart_cost.push(restart_cost);
        self.controller.push(controller);
        self.next_in_job.push(NO_TASK);
        if self.kill_off.is_empty() {
            self.kill_off.push(0);
        }
        self.kill_pos.extend_from_slice(kills);
        self.kill_off.push(self.kill_pos.len() as u32);
        self.state.push(TaskState::NotReady);
        self.epoch.push(0);
        self.durable.push(0.0);
        self.run_base.push(0.0);
        self.phase_start.push(SimTime::ZERO);
        self.busy.push(0.0);
        self.kill_cursor.push(self.kill_off[id.0 as usize]);
        self.storage_op.push(None);
        self.ready_at.push(SimTime::ZERO);
        self.first_ready.push(SimTime::ZERO);
        self.first_ready_set.push(false);
        self.done_at.push(SimTime::ZERO);
        self.wait_time.push(0.0);
        self.outcome.push(TaskOutcome {
            productive: te,
            ..TaskOutcome::default()
        });
        self.host.push(NO_HOST);
        self.host_slot.push(0);
        id
    }

    /// The next pre-planned kill position of task `t`, if any remains.
    #[inline]
    pub fn next_kill(&self, t: usize) -> Option<f64> {
        let cur = self.kill_cursor[t] as usize;
        if cur < self.kill_off[t + 1] as usize {
            Some(self.kill_pos[cur])
        } else {
            None
        }
    }

    /// Consume the front kill position of task `t`.
    #[inline]
    pub fn pop_kill(&mut self, t: usize) {
        debug_assert!(self.kill_cursor[t] < self.kill_off[t + 1]);
        self.kill_cursor[t] += 1;
    }

    /// Bump task `t`'s epoch (a state transition happened) and return the
    /// new value.
    #[inline]
    pub fn bump_epoch(&mut self, t: usize) -> u32 {
        self.epoch[t] += 1;
        self.epoch[t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::FixedSchedule;

    fn push_task(store: &mut TaskStore, te: f64, kills: &[f64]) -> TaskId {
        store.push(
            te,
            100.0,
            Device::Ramdisk,
            1.0,
            1.0,
            Controller::Fixed(FixedSchedule::none()),
            kills,
        )
    }

    #[test]
    fn dense_ids_in_push_order() {
        let mut s = TaskStore::with_capacity(2);
        assert!(s.is_empty());
        let a = push_task(&mut s, 10.0, &[]);
        let b = push_task(&mut s, 20.0, &[5.0]);
        assert_eq!((a, b), (TaskId(0), TaskId(1)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.te, vec![10.0, 20.0]);
    }

    #[test]
    fn kill_arena_slices_per_task() {
        let mut s = TaskStore::with_capacity(3);
        push_task(&mut s, 10.0, &[1.0, 2.0]);
        push_task(&mut s, 10.0, &[]);
        push_task(&mut s, 10.0, &[7.0]);
        assert_eq!(s.kill_off, vec![0, 2, 2, 3]);
        assert_eq!(s.next_kill(0), Some(1.0));
        s.pop_kill(0);
        assert_eq!(s.next_kill(0), Some(2.0));
        s.pop_kill(0);
        assert_eq!(s.next_kill(0), None);
        assert_eq!(s.next_kill(1), None);
        assert_eq!(s.next_kill(2), Some(7.0));
    }

    #[test]
    fn epoch_bumps_monotonically() {
        let mut s = TaskStore::with_capacity(1);
        push_task(&mut s, 10.0, &[]);
        assert_eq!(s.epoch[0], 0);
        assert_eq!(s.bump_epoch(0), 1);
        assert_eq!(s.bump_epoch(0), 2);
    }

    #[test]
    fn outcome_starts_with_full_productive_credit() {
        let mut s = TaskStore::with_capacity(1);
        push_task(&mut s, 42.0, &[]);
        assert_eq!(s.outcome[0].productive, 42.0);
        assert_eq!(s.outcome[0].failures, 0);
    }
}
