//! The full-cluster discrete-event simulation: the stand-in for the paper's
//! testbed (32 hosts × 7 VMs, XEN, BLCR, NFS/DM-NFS).
//!
//! Compared to the fast per-task path ([`crate::runner`]), this engine adds
//! the cluster-level effects the paper's §5.1 describes:
//!
//! * **memory-constrained greedy scheduling** — a pending task is placed on
//!   the host with the maximum available memory (the paper's VM selection
//!   policy); tasks queue when no host fits;
//! * **checkpoint storage contention** — shared-disk checkpoints are
//!   operations on processor-sharing storage servers (one central NFS
//!   server, or one per host for DM-NFS with uniform-random selection);
//! * **restart migration** — a failed task re-queues and restarts on
//!   another host, paying the migration-type restart cost after placement.
//!
//! Sequential-task jobs release their next task only when the previous one
//! finishes; bag-of-tasks jobs submit all tasks at arrival.
//!
//! ## High-throughput core
//!
//! The engine is built to push millions of tasks in seconds (the regimes
//! of arXiv:1802.07455's asymptotics and arXiv:2311.17545's fleet
//! evaluation — long tasks, high failure rates, large fleets):
//!
//! * task state lives in a dense struct-of-arrays [`TaskStore`] — an event
//!   touches only the columns it needs, and kill plans live in one shared
//!   arena instead of a `VecDeque` per task;
//! * the future-event list is an indexed binary heap
//!   ([`crate::event::FastQueue`]) with stable `(time, seq)` ordering and
//!   inline payloads; job arrivals are *not* pre-scheduled — a sorted
//!   arrival cursor feeds them in lazily, so the heap holds only the
//!   events of currently-active tasks (hundreds, not hundreds of
//!   thousands);
//! * failure events that provably cannot land inside the current phase
//!   (the next kill falls beyond the phase's known end) are never
//!   scheduled — they would arrive stale and be dropped anyway, so
//!   skipping them changes no results, only wasted heap traffic;
//! * per-host occupant lists make whole-host failures O(victims), not
//!   O(all tasks);
//! * metrics accumulate in streaming form when asked
//!   ([`MetricsMode::Streaming`]) so million-checkpoint runs don't grow
//!   per-event `Vec`s;
//! * [`SimBudget`] + [`SimProgress`] make long runs interruptible and
//!   observable — the sweep executor forwards these snapshots into
//!   `--progress` heartbeats for stress-scale cluster cells;
//! * the engine is generic over an [`Observer`] (default [`ckpt_obs::NoObs`],
//!   which compiles every counter hook to nothing); attach a
//!   [`ckpt_obs::Counters`] cell via [`ClusterSim::with_observer`] and run
//!   through [`ClusterSim::run_observed`] to collect deterministic event /
//!   kill / checkpoint counters without perturbing results.
//!
//! Staleness discipline: every task-directed event carries the task's
//! *epoch* at scheduling time; any state transition bumps the epoch, so
//! events from superseded phases are ignored on arrival. Storage completions
//! use the PS server's generation counter the same way.
//!
//! Determinism: results are a pure function of `(config, trace, estimates,
//! policy)`. Event order is total — integer-microsecond times, ties broken
//! by schedule order — and all randomness (host-failure draws, DM-NFS
//! server picks) comes from one stream consumed in event order.

use crate::blcr::{BlcrModel, Device};
use crate::event::FastQueue;
use crate::metrics::{JobRecord, StreamStats};
use crate::policy::{plan_task, Estimates, PolicyConfig};
use crate::storage::{OpId, PsResource};
use crate::task_sim::TaskOutcome;
use crate::task_store::{TaskState, TaskStore, NO_HOST, NO_TASK};
use crate::time::{SimDuration, SimTime};
use ckpt_obs::{Counter, NoObs, Observer};
use ckpt_stats::rng::{Rng64, SplitMix64, Xoshiro256StarStar};
use ckpt_stats::sketch::QuantileSketch;
use ckpt_trace::failure::{sample_task_plan, FailureModelSpec, FailureProcess, HazardProcess};
use ckpt_trace::gen::{JobStructure, Trace};
use ckpt_trace::plan::FailurePlanArena;
use std::collections::{HashMap, VecDeque};

/// Cluster topology and storage parameters (defaults = the paper's testbed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of physical hosts (paper: 32).
    pub n_hosts: usize,
    /// VM slots per host (paper: 7 one-GB VMs per host).
    pub vms_per_host: usize,
    /// Usable memory per host, MB (paper: 7 × 1 GB VM allocations).
    pub host_mem_mb: f64,
    /// Aggregate service rate of each NFS server, in uncontended
    /// checkpoint-seconds per wall second (1.0 = nominal Table 4 speed).
    pub storage_rate: f64,
    /// Optional whole-host failures: mean time between failures per host
    /// (seconds). When a host fails, every task running (or
    /// checkpointing) on it is killed and "immediately restarted on other
    /// hosts from their most recent checkpoints" (paper §2). `None`
    /// disables host failures (the default; the paper's evaluation injects
    /// failures at task granularity from the trace).
    pub host_mtbf_s: Option<f64>,
    /// The inter-failure law host failures are drawn from
    /// ([`ckpt_trace::failure`]). The default
    /// [`FailureModelSpec::Exponential`] reproduces the historical
    /// `-ln(U)·MTBF` draws bit-for-bit; other models keep the configured
    /// MTBF as the process mean and change only the interval law.
    pub failure_model: FailureModelSpec,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            n_hosts: 32,
            vms_per_host: 7,
            host_mem_mb: 7.0 * 1024.0,
            storage_rate: 1.0,
            host_mtbf_s: None,
            failure_model: FailureModelSpec::Exponential,
        }
    }
}

/// How the engine accumulates per-checkpoint observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsMode {
    /// Keep every checkpoint duration (Table 2/3-style measurements need
    /// the raw sample). The default; output is byte-identical to the
    /// historical engine.
    #[default]
    Full,
    /// Stream durations into [`StreamStats`] plus a mergeable quantile
    /// sketch only — constant memory, for stress-scale runs where a raw
    /// `Vec` would grow per event.
    /// [`ClusterRunResult::checkpoint_durations`] stays empty;
    /// [`ClusterRunResult::checkpoint_sketch`] keeps the order statistics.
    Streaming,
}

/// Execution budget for [`ClusterSim::run_with`]: run until done or until
/// a limit is hit, reporting progress along the way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimBudget {
    /// Stop after this many processed events.
    pub max_events: Option<u64>,
    /// Stop before processing any event later than this simulated time.
    pub max_sim_time: Option<SimTime>,
    /// Invoke the progress callback every N processed events (0 = never).
    pub progress_every: u64,
}

impl SimBudget {
    /// No limits, no progress reporting.
    pub const UNLIMITED: SimBudget = SimBudget {
        max_events: None,
        max_sim_time: None,
        progress_every: 0,
    };
}

/// How a [`ClusterSim::run_with`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The event queue drained: every task completed.
    Completed,
    /// [`SimBudget::max_events`] was reached first.
    EventBudgetExhausted,
    /// [`SimBudget::max_sim_time`] was reached first.
    TimeBudgetExhausted,
}

/// A progress snapshot handed to the [`ClusterSim::run_with`] /
/// [`ClusterSim::run_observed`] callback every
/// [`SimBudget::progress_every`] events. The sweep executor wires these
/// into per-cell `--progress` heartbeats, so stress cluster cells report
/// partial event counts while they run.
#[derive(Debug, Clone, Copy)]
pub struct SimProgress {
    /// Events processed so far.
    pub events: u64,
    /// Current simulated time.
    pub sim_time: SimTime,
    /// Tasks that have completed.
    pub tasks_done: usize,
    /// Total tasks in the workload.
    pub tasks_total: usize,
}

/// One job's result from a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterJobRecord {
    /// The per-task aggregation. Task walls are ready→done spans, so
    /// queueing delays count against WPR, as in the paper's Formula (9).
    pub base: JobRecord,
    /// Total time tasks spent waiting in the scheduler queue (seconds).
    pub queue_wait: f64,
    /// Job span: arrival of the job to completion of its last task (s).
    pub span: f64,
}

/// Result of a cluster replay.
#[derive(Debug, Clone)]
pub struct ClusterRunResult {
    /// Per-job records, in job order.
    pub jobs: Vec<ClusterJobRecord>,
    /// Durations of all completed checkpoints (for Table 2/3 style
    /// contention measurements). Empty under [`MetricsMode::Streaming`].
    pub checkpoint_durations: Vec<f64>,
    /// Streaming summary of completed checkpoint durations (populated in
    /// both metrics modes).
    pub checkpoint_stats: StreamStats,
    /// Mergeable quantile sketch of completed checkpoint durations
    /// (populated in both metrics modes), so order statistics survive
    /// [`MetricsMode::Streaming`] runs where the raw duration `Vec` never
    /// materializes.
    pub checkpoint_sketch: QuantileSketch,
    /// Highest number of simultaneously in-flight shared-disk checkpoints.
    pub max_concurrent_checkpoints: usize,
    /// Total simulated time.
    pub makespan: SimTime,
    /// Whole-host failures injected (0 unless `host_mtbf_s` was set).
    pub host_failures: u64,
    /// Events processed (arrivals, milestones, failures, checkpoint and
    /// storage completions, restores, host failures).
    pub events: u64,
    /// How the run ended (always [`RunStatus::Completed`] via
    /// [`ClusterSim::run`]).
    pub status: RunStatus,
    /// Tasks completed — equals the trace's task count when `status` is
    /// `Completed`; smaller when a budget interrupted the run (job
    /// records for unfinished tasks are then partial).
    pub tasks_done: usize,
}

/// Compact event payload. Job arrivals are not heap events — they feed in
/// from the engine's sorted arrival cursor.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Failure { task: u32, epoch: u32 },
    CkptDone { task: u32, epoch: u32 },
    Milestone { task: u32, epoch: u32 },
    RestoreDone { task: u32, epoch: u32 },
    Storage { server: u32, generation: u64 },
    HostFailure { host: u32 },
}

/// Stream selector of the cluster-level RNG (host-failure draws, DM-NFS
/// server picks). The sharded runner derives per-shard streams as
/// `CLUSTER_STREAM + shard_index`, so shard 0 reproduces the unsharded
/// engine's stream bit-for-bit.
pub(crate) const CLUSTER_STREAM: u64 = 0xC105;

/// The cluster engine. Build with [`ClusterSim::new`], then
/// [`ClusterSim::run`] (or [`ClusterSim::run_with`] for budgeted,
/// observable execution, or [`ClusterSim::run_observed`] to also collect
/// the attached observer's counters).
pub struct ClusterSim<'a, O: Observer = NoObs> {
    cfg: ClusterConfig,
    trace: &'a Trace,
    queue: FastQueue<Ev>,
    store: TaskStore,
    /// First dense task id of each job (`job_start.len() == jobs + 1`).
    job_start: Vec<u32>,
    /// Job arrivals sorted by `(time, job index)`; fed into the event
    /// stream lazily through `arrival_cursor` so the heap never holds the
    /// whole future workload.
    arrivals: Vec<(SimTime, u32)>,
    arrival_cursor: usize,
    /// FIFO scheduler queue of task ids.
    pending: VecDeque<u32>,
    host_mem_free: Vec<f64>,
    /// Tasks currently holding a VM slot on each host (swap-remove order;
    /// consumers that need determinism sort before use). Doubles as the
    /// per-host VM-slot count (`occupants[h].len()`).
    occupants: Vec<Vec<u32>>,
    storage: Vec<PsResource>,
    /// op id → task id.
    storage_ops: HashMap<u64, u32>,
    next_op_id: u64,
    cluster_rng: Xoshiro256StarStar,
    /// Host inter-failure process, built once from `(failure_model,
    /// host_mtbf_s)` — constructing it per draw would redo Weibull/Pareto
    /// parameter derivation on every host-failure event. `None` when host
    /// failures are disabled.
    host_process: Option<HazardProcess>,
    metrics_mode: MetricsMode,
    ckpt_durations: Vec<f64>,
    ckpt_stats: StreamStats,
    ckpt_sketch: QuantileSketch,
    max_concurrent: usize,
    host_failures: u64,
    /// Kill-plan provenance recorded at build time (one lookup per task):
    /// transferred to the observer by [`ClusterSim::with_observer`] so the
    /// arena-identity telemetry invariant covers cluster cells too.
    plan_lookups: u64,
    arena_hits: u64,
    arena_misses: u64,
    /// Tasks not yet completed; host-failure injection stops at zero so the
    /// event queue can drain.
    tasks_remaining: usize,
    /// Time of the last workload event (makespan; excludes trailing
    /// host-failure events after completion).
    last_activity: SimTime,
    now: SimTime,
    events: u64,
    /// Telemetry hook; [`NoObs`] (the default) compiles every counter
    /// call in the event loop to nothing.
    obs: O,
}

impl<'a> ClusterSim<'a> {
    /// Build a cluster simulation over a trace with a policy, sampling
    /// every task's kill plan fresh from its failure stream.
    pub fn new(
        cfg: ClusterConfig,
        trace: &'a Trace,
        estimates: &'a Estimates,
        policy: PolicyConfig,
    ) -> Self {
        Self::build(cfg, trace, estimates, policy, None, CLUSTER_STREAM)
    }

    /// [`ClusterSim::new`] drawing kill plans from a shared
    /// [`FailurePlanArena`] instead of re-sampling — byte-identical output
    /// (the arena holds the exact positions the per-task streams produce),
    /// minus the whole per-cell sampling pass. This is the sweep engine's
    /// cross-cell fast path, now shared with the fast engine: one arena
    /// per `(trace, failure model)` serves every policy/cost cell. The
    /// arena is only read during construction; nothing borrows it after.
    pub fn with_plans(
        cfg: ClusterConfig,
        trace: &'a Trace,
        estimates: &'a Estimates,
        policy: PolicyConfig,
        plans: &FailurePlanArena,
    ) -> Self {
        Self::build(cfg, trace, estimates, policy, Some(plans), CLUSTER_STREAM)
    }

    /// [`ClusterSim::build`] for one shard of a sharded run: the cluster
    /// RNG stream selector is `CLUSTER_STREAM + shard_index` — derived
    /// `(seed, shard)`-style like sweep cells — so shard 0 consumes the
    /// exact legacy stream and every shard's draws are independent of
    /// thread count. The stream must be fixed at construction because the
    /// initial host-failure wave draws from it before the run starts.
    pub(crate) fn for_shard(
        cfg: ClusterConfig,
        trace: &'a Trace,
        estimates: &'a Estimates,
        policy: PolicyConfig,
        plans: Option<&FailurePlanArena>,
        shard_index: u64,
    ) -> Self {
        Self::build(
            cfg,
            trace,
            estimates,
            policy,
            plans,
            CLUSTER_STREAM + shard_index,
        )
    }

    fn build(
        cfg: ClusterConfig,
        trace: &'a Trace,
        estimates: &'a Estimates,
        policy: PolicyConfig,
        plans: Option<&FailurePlanArena>,
        stream: u64,
    ) -> Self {
        let blcr = BlcrModel;
        let n_tasks: usize = trace.jobs.iter().map(|j| j.tasks.len()).sum();
        let mut store = TaskStore::with_capacity(n_tasks);
        let mut job_start = Vec::with_capacity(trace.jobs.len() + 1);
        for (job_idx, job) in trace.jobs.iter().enumerate() {
            job_start.push(store.len() as u32);
            for t in &job.tasks {
                let plan = plan_task(&policy, &blcr, estimates, t, job.priority);
                // The same kill plan the history/estimator saw (common
                // random numbers across policies and with the fast path):
                // borrowed from the shared arena when one is provided —
                // it holds exactly the positions the stream produces —
                // or sampled fresh from the task's own stream.
                match plans {
                    Some(arena) => {
                        store.push(
                            t.length_s,
                            t.mem_mb,
                            plan.device,
                            plan.ckpt_cost,
                            plan.restart_cost,
                            plan.controller,
                            arena.kills(t.id),
                        );
                    }
                    None => {
                        let kills = {
                            let mut rng = trace.failure_stream(t.id);
                            sample_task_plan(
                                trace.failure_model,
                                job.priority,
                                t.length_s,
                                &mut rng,
                            )
                        };
                        store.push(
                            t.length_s,
                            t.mem_mb,
                            plan.device,
                            plan.ckpt_cost,
                            plan.restart_cost,
                            plan.controller,
                            &kills.positions,
                        );
                    }
                }
            }
            // Successor links for sequential release (idx k → idx k+1).
            let base = job_start[job_idx] as usize;
            if job.structure == JobStructure::Sequential {
                for (k, t) in job.tasks.iter().enumerate() {
                    let succ = if job.tasks.get(k + 1).map(|n| n.idx) == Some(t.idx + 1) {
                        Some(base + k + 1)
                    } else {
                        job.tasks
                            .iter()
                            .position(|n| n.idx == t.idx + 1)
                            .map(|p| base + p)
                    };
                    store.next_in_job[base + k] = succ.map(|s| s as u32).unwrap_or(NO_TASK);
                }
            }
        }
        job_start.push(store.len() as u32);

        let mut arrivals: Vec<(SimTime, u32)> = trace
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| (SimTime::from_secs_f64(j.arrival_s), i as u32))
            .collect();
        // Stable by time: equal-time arrivals keep job order, matching the
        // historical engine's (time, schedule-seq) order.
        arrivals.sort_by_key(|&(t, _)| t);

        let mut sim = Self {
            cfg,
            trace,
            queue: FastQueue::with_capacity(1024),
            store,
            job_start,
            arrivals,
            arrival_cursor: 0,
            pending: VecDeque::new(),
            host_mem_free: vec![cfg.host_mem_mb; cfg.n_hosts],
            occupants: vec![Vec::new(); cfg.n_hosts],
            storage: (0..cfg.n_hosts)
                .map(|_| PsResource::new(cfg.storage_rate))
                .collect(),
            storage_ops: HashMap::new(),
            next_op_id: 0,
            cluster_rng: Xoshiro256StarStar::stream(SplitMix64::mix(trace.seed), stream),
            host_process: cfg.host_mtbf_s.map(|mtbf| cfg.failure_model.process(mtbf)),
            metrics_mode: MetricsMode::Full,
            ckpt_durations: Vec::new(),
            ckpt_stats: StreamStats::default(),
            ckpt_sketch: QuantileSketch::new(),
            max_concurrent: 0,
            host_failures: 0,
            plan_lookups: 0,
            arena_hits: 0,
            arena_misses: 0,
            tasks_remaining: 0,
            last_activity: SimTime::ZERO,
            now: SimTime::ZERO,
            events: 0,
            obs: NoObs,
        };
        sim.tasks_remaining = sim.store.len();
        sim.plan_lookups = sim.store.len() as u64;
        if plans.is_some() {
            sim.arena_hits = sim.plan_lookups;
        } else {
            sim.arena_misses = sim.plan_lookups;
        }
        if cfg.host_mtbf_s.is_some() {
            for host in 0..cfg.n_hosts {
                sim.schedule_host_failure(host);
            }
        }
        sim
    }
}

impl<'a, O: Observer> ClusterSim<'a, O> {
    /// Set the metrics accumulation mode (default [`MetricsMode::Full`]).
    pub fn with_metrics(mut self, mode: MetricsMode) -> Self {
        self.metrics_mode = mode;
        self
    }

    /// Swap in a different observer (e.g. a [`ckpt_obs::Counters`] cell).
    /// A counting observer never changes what the simulation computes —
    /// results stay bit-identical to the [`NoObs`] build; it only records
    /// what happened. Retrieve the counts via [`ClusterSim::run_observed`].
    pub fn with_observer<O2: Observer>(self, mut obs: O2) -> ClusterSim<'a, O2> {
        // Events already in the heap (the initial host-failure wave,
        // scheduled at construction under the previous observer) transfer
        // their scheduled-count to the incoming observer, preserving the
        // popped == scheduled − stale accounting identity. Build-time
        // kill-plan lookups transfer the same way, so the arena identity
        // (hits + misses == lookups) holds for cluster cells.
        obs.incr(Counter::EventsScheduled, self.queue.len() as u64);
        obs.incr(Counter::PlanLookups, self.plan_lookups);
        obs.incr(Counter::ArenaHits, self.arena_hits);
        obs.incr(Counter::ArenaMisses, self.arena_misses);
        ClusterSim {
            cfg: self.cfg,
            trace: self.trace,
            queue: self.queue,
            store: self.store,
            job_start: self.job_start,
            arrivals: self.arrivals,
            arrival_cursor: self.arrival_cursor,
            pending: self.pending,
            host_mem_free: self.host_mem_free,
            occupants: self.occupants,
            storage: self.storage,
            storage_ops: self.storage_ops,
            next_op_id: self.next_op_id,
            cluster_rng: self.cluster_rng,
            host_process: self.host_process,
            metrics_mode: self.metrics_mode,
            ckpt_durations: self.ckpt_durations,
            ckpt_stats: self.ckpt_stats,
            ckpt_sketch: self.ckpt_sketch,
            max_concurrent: self.max_concurrent,
            host_failures: self.host_failures,
            plan_lookups: self.plan_lookups,
            arena_hits: self.arena_hits,
            arena_misses: self.arena_misses,
            tasks_remaining: self.tasks_remaining,
            last_activity: self.last_activity,
            now: self.now,
            events: self.events,
            obs,
        }
    }

    /// Number of tasks in the workload.
    pub fn task_count(&self) -> usize {
        self.store.len()
    }

    /// Schedule a heap event, counting it toward
    /// [`Counter::EventsScheduled`].
    #[inline]
    fn schedule_ev(&mut self, when: SimTime, ev: Ev) {
        self.obs.tick(Counter::EventsScheduled);
        self.queue.schedule(when, ev);
    }

    /// Account a provably-stale kill the engine decided not to enqueue:
    /// it counts as scheduled *and* stale-skipped, keeping the
    /// `popped == scheduled − stale_skips` identity exact on completion.
    #[inline]
    fn count_stale_skip(&mut self) {
        self.obs.tick(Counter::EventsScheduled);
        self.obs.tick(Counter::StaleSkips);
    }

    /// Draw the next whole-host failure for `host` from the configured
    /// failure process (the default exponential process reproduces the
    /// historical `-ln(U)·MTBF` draw on the same stream, bit-for-bit).
    fn schedule_host_failure(&mut self, host: usize) {
        let Some(process) = &self.host_process else {
            return;
        };
        let dt = process.sample_interval(&mut self.cluster_rng);
        self.schedule_ev(
            self.now + SimDuration::from_secs_f64(dt),
            Ev::HostFailure { host: host as u32 },
        );
    }

    /// Mark a task ready and try to place it.
    fn make_ready(&mut self, ti: usize) {
        self.store.state[ti] = TaskState::Queued;
        self.store.bump_epoch(ti);
        self.store.ready_at[ti] = self.now;
        if !self.store.first_ready_set[ti] {
            self.store.first_ready_set[ti] = true;
            self.store.first_ready[ti] = self.now;
        }
        self.pending.push_back(ti as u32);
        self.try_place();
    }

    /// Greedy placement: host with maximum free memory that fits (the
    /// paper's policy), FIFO over the queue.
    fn try_place(&mut self) {
        loop {
            let ti = match self.pending.front().copied() {
                Some(ti) => ti as usize,
                None => return,
            };
            let mem = self.store.mem_mb[ti];
            let mut best: Option<(usize, f64)> = None;
            for h in 0..self.cfg.n_hosts {
                if self.occupants[h].len() < self.cfg.vms_per_host && self.host_mem_free[h] >= mem {
                    match best {
                        Some((_, free)) if free >= self.host_mem_free[h] => {}
                        _ => best = Some((h, self.host_mem_free[h])),
                    }
                }
            }
            let Some((h, _)) = best else {
                return; // head of queue does not fit anywhere: FIFO blocks
            };
            self.pending.pop_front();
            self.host_mem_free[h] -= mem;
            self.store.host[ti] = h as u32;
            self.store.host_slot[ti] = self.occupants[h].len() as u32;
            self.occupants[h].push(ti as u32);
            self.store.wait_time[ti] += (self.now - self.store.ready_at[ti]).as_secs_f64();
            let is_restart = self.store.outcome[ti].failures > 0;
            if is_restart {
                // Pay the restore (migration) cost; the task is not busy, so
                // its failure clock is paused.
                self.obs.tick(Counter::Restarts);
                self.store.state[ti] = TaskState::Restoring;
                let epoch = self.store.bump_epoch(ti);
                let restart_cost = self.store.restart_cost[ti];
                self.store.outcome[ti].restart_time += restart_cost;
                let when = self.now + SimDuration::from_secs_f64(restart_cost);
                self.schedule_ev(
                    when,
                    Ev::RestoreDone {
                        task: ti as u32,
                        epoch,
                    },
                );
            } else {
                self.start_run(ti);
            }
        }
    }

    /// Begin (or resume) a productive run phase from the durable position.
    fn start_run(&mut self, ti: usize) {
        let now = self.now;
        self.store.state[ti] = TaskState::Running;
        let epoch = self.store.bump_epoch(ti);
        let durable = self.store.durable[ti];
        let te = self.store.te[ti];
        self.store.run_base[ti] = durable;
        self.store.phase_start[ti] = now;
        let next_ckpt = self.store.controller[ti]
            .next_checkpoint()
            .filter(|&p| p > durable && p < te);
        let target = next_ckpt.unwrap_or(te);
        let run_needed = (target - durable).max(0.0);
        let milestone_at = now + SimDuration::from_secs_f64(run_needed);
        if let Some(kill) = self.store.next_kill(ti) {
            let fail_at = now + SimDuration::from_secs_f64((kill - self.store.busy[ti]).max(0.0));
            // A kill beyond this phase's end can never fire here — the
            // milestone transition would make it stale. Skip it; the next
            // phase re-schedules against the same kill.
            if fail_at <= milestone_at {
                self.schedule_ev(
                    fail_at,
                    Ev::Failure {
                        task: ti as u32,
                        epoch,
                    },
                );
            } else {
                self.count_stale_skip();
            }
        }
        self.schedule_ev(
            milestone_at,
            Ev::Milestone {
                task: ti as u32,
                epoch,
            },
        );
    }

    /// Release the task's host resources.
    fn release_host(&mut self, ti: usize) {
        let h = self.store.host[ti];
        if h != NO_HOST {
            let h = h as usize;
            self.store.host[ti] = NO_HOST;
            self.host_mem_free[h] += self.store.mem_mb[ti];
            // Swap-remove from the occupant list, patching the moved
            // task's slot index (no patch needed when the removed task
            // was the last entry).
            let slot = self.store.host_slot[ti] as usize;
            self.occupants[h].swap_remove(slot);
            if let Some(&moved) = self.occupants[h].get(slot) {
                self.store.host_slot[moved as usize] = slot as u32;
            }
        }
    }

    /// Kill a task: either its next planned trace kill (`from_plan`) or an
    /// exogenous event such as a whole-host failure.
    fn on_failure(&mut self, ti: usize, from_plan: bool) {
        let now = self.now;
        self.obs.tick(Counter::TaskKills);
        // Abort any in-flight storage op.
        let had_storage_op = if let Some((server, op, started)) = self.store.storage_op[ti].take() {
            let server = server as usize;
            self.storage[server].remove(now, op);
            self.storage_ops.remove(&op.0);
            self.reschedule_storage(server);
            self.store.outcome[ti].aborted_checkpoints += 1;
            self.obs.tick(Counter::CheckpointsAborted);
            self.store.outcome[ti].checkpoint_time += (now - started).as_secs_f64();
            true
        } else {
            false
        };
        let elapsed = (now - self.store.phase_start[ti]).as_secs_f64();
        self.store.busy[ti] += elapsed;
        if from_plan {
            self.store.pop_kill(ti);
        }
        let run_base = self.store.run_base[ti];
        let live = match self.store.state[ti] {
            TaskState::Running => run_base + elapsed,
            // During a write the partial write time is busy but not
            // progress; progress is frozen at run_base. (Shared-disk writes
            // were already accounted in the storage-op branch above.)
            TaskState::Checkpointing => {
                if !had_storage_op {
                    self.store.outcome[ti].checkpoint_time += elapsed;
                    self.store.outcome[ti].aborted_checkpoints += 1;
                    self.obs.tick(Counter::CheckpointsAborted);
                }
                run_base
            }
            _ => run_base,
        };
        let durable = self.store.durable[ti];
        self.store.outcome[ti].failures += 1;
        self.store.outcome[ti].rollback_loss += (live - durable).max(0.0);
        self.store.controller[ti].on_rollback(durable);
        self.store.state[ti] = TaskState::Queued;
        self.store.bump_epoch(ti);
        self.store.ready_at[ti] = now;
        // The task migrates: release this host, re-queue.
        self.release_host(ti);
        self.pending.push_back(ti as u32);
        self.try_place();
    }

    fn on_milestone(&mut self, ti: usize) {
        let now = self.now;
        self.store.busy[ti] += (now - self.store.phase_start[ti]).as_secs_f64();
        let durable = self.store.durable[ti];
        let te = self.store.te[ti];
        let next_ckpt = self.store.controller[ti]
            .next_checkpoint()
            .filter(|&p| p > durable && p < te);
        let Some(target) = next_ckpt else {
            self.complete_task(ti);
            return;
        };
        // Start a checkpoint at position `target`.
        let server_pick = match self.store.device[ti] {
            Device::CentralNfs => Some(0usize),
            Device::DmNfs => Some(self.cluster_rng.next_range(self.cfg.n_hosts as u64) as usize),
            Device::Ramdisk => None,
        };
        self.store.run_base[ti] = target;
        self.store.state[ti] = TaskState::Checkpointing;
        let epoch = self.store.bump_epoch(ti);
        self.store.phase_start[ti] = now;
        match server_pick {
            None => {
                let when = now + SimDuration::from_secs_f64(self.store.ckpt_cost[ti]);
                if let Some(kill) = self.store.next_kill(ti) {
                    let fail_at =
                        now + SimDuration::from_secs_f64((kill - self.store.busy[ti]).max(0.0));
                    // Fixed-duration write: a kill beyond its completion
                    // would arrive stale — skip it (ties keep the kill,
                    // which was always scheduled first).
                    if fail_at <= when {
                        self.schedule_ev(
                            fail_at,
                            Ev::Failure {
                                task: ti as u32,
                                epoch,
                            },
                        );
                    } else {
                        self.count_stale_skip();
                    }
                }
                self.schedule_ev(
                    when,
                    Ev::CkptDone {
                        task: ti as u32,
                        epoch,
                    },
                );
            }
            Some(server) => {
                // Contended write: completion time is not known up front,
                // so the kill (if any) must always be armed.
                if let Some(kill) = self.store.next_kill(ti) {
                    let fail_at =
                        now + SimDuration::from_secs_f64((kill - self.store.busy[ti]).max(0.0));
                    self.schedule_ev(
                        fail_at,
                        Ev::Failure {
                            task: ti as u32,
                            epoch,
                        },
                    );
                }
                let demand = self.store.ckpt_cost[ti];
                let op = OpId(self.next_op_id);
                self.next_op_id += 1;
                self.store.storage_op[ti] = Some((server as u32, op, now));
                self.storage[server].add(now, op, demand);
                self.storage_ops.insert(op.0, ti as u32);
                self.max_concurrent = self.max_concurrent.max(self.storage_ops.len());
                self.reschedule_storage(server);
            }
        }
    }

    /// (Re-)schedule the pending completion event of a PS server.
    fn reschedule_storage(&mut self, server: usize) {
        if let Some((_, when)) = self.storage[server].next_completion(self.now) {
            let generation = self.storage[server].generation();
            self.schedule_ev(
                when,
                Ev::Storage {
                    server: server as u32,
                    generation,
                },
            );
        }
    }

    fn finish_checkpoint(&mut self, ti: usize, duration: f64) {
        let now = self.now;
        self.store.busy[ti] += (now - self.store.phase_start[ti]).as_secs_f64();
        self.store.outcome[ti].checkpoint_time += duration;
        self.store.outcome[ti].checkpoints += 1;
        self.obs.tick(Counter::CheckpointsWritten);
        let pos = self.store.run_base[ti];
        self.store.durable[ti] = pos;
        self.store.controller[ti].on_checkpoint_complete(pos);
        self.ckpt_stats.add(duration);
        self.ckpt_sketch.add(duration);
        if self.metrics_mode == MetricsMode::Full {
            self.ckpt_durations.push(duration);
        }
        self.start_run(ti);
    }

    fn complete_task(&mut self, ti: usize) {
        let now = self.now;
        self.store.state[ti] = TaskState::Done;
        self.store.bump_epoch(ti);
        self.store.done_at[ti] = now;
        let start = if self.store.first_ready_set[ti] {
            self.store.first_ready[ti]
        } else {
            now
        };
        self.store.outcome[ti].wall = (now - start).as_secs_f64();
        self.tasks_remaining -= 1;
        self.release_host(ti);
        // ST jobs: release the successor task.
        let succ = self.store.next_in_job[ti];
        if succ != NO_TASK {
            self.make_ready(succ as usize);
            return; // make_ready already tried placement
        }
        self.try_place();
    }

    /// The next event in global `(time, schedule-order)` order, merging the
    /// lazy arrival cursor with the heap. Arrivals win ties — they were
    /// scheduled first (at construction) in the historical engine, and the
    /// merge preserves exactly that order.
    fn next_event(&mut self) -> Option<(SimTime, Option<Ev>)> {
        let arrival = self.arrivals.get(self.arrival_cursor).map(|&(t, _)| t);
        match (arrival, self.queue.peek_time()) {
            (Some(at), Some(qt)) if at <= qt => {
                self.arrival_cursor += 1;
                // Arrivals bypass the heap, but they are still events the
                // loop pops: count them as scheduled at consumption so
                // the popped/scheduled identity covers them.
                self.obs.tick(Counter::EventsScheduled);
                Some((at, None))
            }
            (Some(at), None) => {
                self.arrival_cursor += 1;
                self.obs.tick(Counter::EventsScheduled);
                Some((at, None))
            }
            (_, Some(_)) => self.queue.pop().map(|(t, ev)| (t, Some(ev))),
            (None, None) => None,
        }
    }

    /// Peek the next event time without consuming it.
    pub(crate) fn next_event_time(&self) -> Option<SimTime> {
        let arrival = self.arrivals.get(self.arrival_cursor).map(|&(t, _)| t);
        match (arrival, self.queue.peek_time()) {
            (Some(at), Some(qt)) => Some(at.min(qt)),
            (Some(at), None) => Some(at),
            (None, qt) => qt,
        }
    }

    /// Run the simulation to completion and collect results.
    pub fn run(self) -> ClusterRunResult {
        self.run_with(SimBudget::UNLIMITED, |_| {}).0
    }

    /// Run under a [`SimBudget`], reporting [`SimProgress`] along the way.
    ///
    /// Returns the (possibly partial) result and how the run ended. When a
    /// budget interrupts the run, records of unfinished jobs reflect only
    /// the completed tasks' accounting — check
    /// [`ClusterRunResult::tasks_done`] before interpreting them.
    pub fn run_with(
        self,
        budget: SimBudget,
        on_progress: impl FnMut(&SimProgress),
    ) -> (ClusterRunResult, RunStatus) {
        let (result, status, _) = self.run_observed(budget, on_progress);
        (result, status)
    }

    /// [`ClusterSim::run_with`], additionally returning the observer with
    /// the counters it collected. The observer never perturbs the
    /// simulation: results are bit-identical to the [`NoObs`] build.
    pub fn run_observed(
        mut self,
        budget: SimBudget,
        mut on_progress: impl FnMut(&SimProgress),
    ) -> (ClusterRunResult, RunStatus, O) {
        let status = self.step_budget(budget, &mut on_progress);
        if O::ENABLED && status == RunStatus::Completed {
            // The queue drained, so every scheduled event was popped and
            // every provably-stale skip is accounted: the engine's event
            // bookkeeping must balance exactly.
            debug_assert_eq!(
                self.obs.get(Counter::EventsPopped),
                self.obs.get(Counter::EventsScheduled) - self.obs.get(Counter::StaleSkips),
                "DES event accounting identity violated"
            );
        }
        let obs = std::mem::take(&mut self.obs);
        (self.into_result(status), status, obs)
    }

    /// Advance the simulation in place under a [`SimBudget`]. The engine
    /// stays resumable after a budget stop: the sharded runner drives one
    /// engine per shard through successive conservative time windows by
    /// calling this with increasing `max_sim_time` horizons. Exactly the
    /// historical event loop — a single unlimited call is the legacy
    /// [`ClusterSim::run`] path.
    pub(crate) fn step_budget(
        &mut self,
        budget: SimBudget,
        on_progress: &mut impl FnMut(&SimProgress),
    ) -> RunStatus {
        let mut status = RunStatus::Completed;
        // Budgets are checked only when another event actually exists, so a
        // budget of exactly the total event count still reports `Completed`.
        while let Some(next_time) = self.next_event_time() {
            if let Some(max) = budget.max_events {
                if self.events >= max {
                    status = RunStatus::EventBudgetExhausted;
                    break;
                }
            }
            if let Some(limit) = budget.max_sim_time {
                if next_time > limit {
                    status = RunStatus::TimeBudgetExhausted;
                    break;
                }
            }
            let Some((time, ev)) = self.next_event() else {
                break;
            };
            debug_assert!(time >= self.now);
            self.now = time;
            self.events += 1;
            self.obs.tick(Counter::EventsPopped);
            if O::ENABLED {
                self.obs
                    .record_peak(Counter::HeapPeak, self.queue.len() as u64);
            }
            if !matches!(ev, Some(Ev::HostFailure { .. })) {
                self.last_activity = time;
            }
            // Labeled so early exits (stale events, post-completion host
            // failures) still fall through to the progress check below —
            // every counted event gets its progress tick.
            'dispatch: {
                match ev {
                    None => {
                        // Job arrival (from the sorted cursor): the job index is
                        // the one just consumed.
                        let job_idx = self.arrivals[self.arrival_cursor - 1].1 as usize;
                        let job = &self.trace.jobs[job_idx];
                        let base = self.job_start[job_idx] as usize;
                        match job.structure {
                            JobStructure::Sequential => {
                                for k in 0..job.tasks.len() {
                                    if job.tasks[k].idx == 0 {
                                        self.make_ready(base + k);
                                    }
                                }
                            }
                            JobStructure::BagOfTasks => {
                                for k in 0..job.tasks.len() {
                                    self.make_ready(base + k);
                                }
                            }
                        }
                    }
                    Some(Ev::Failure { task, epoch }) => {
                        let t = task as usize;
                        let valid = self.store.epoch[t] == epoch
                            && matches!(
                                self.store.state[t],
                                TaskState::Running | TaskState::Checkpointing
                            );
                        if valid {
                            self.on_failure(t, true);
                        }
                    }
                    Some(Ev::HostFailure { host }) => {
                        if self.tasks_remaining == 0 {
                            break 'dispatch; // workload done: stop injecting, let the queue drain
                        }
                        self.host_failures += 1;
                        self.obs.tick(Counter::HostFailures);
                        // Kill every task currently occupying this host; they
                        // restart elsewhere from their last durable checkpoints.
                        // Sorted ascending: the historical engine scanned the
                        // dense task array in id order, and victim order decides
                        // re-queue (hence placement) order.
                        let mut victims: Vec<u32> = self.occupants[host as usize]
                            .iter()
                            .copied()
                            .filter(|&t| {
                                matches!(
                                    self.store.state[t as usize],
                                    TaskState::Running | TaskState::Checkpointing
                                )
                            })
                            .collect();
                        victims.sort_unstable();
                        for ti in victims {
                            self.on_failure(ti as usize, false);
                        }
                        self.schedule_host_failure(host as usize);
                    }
                    Some(Ev::Milestone { task, epoch }) => {
                        let t = task as usize;
                        let valid = self.store.epoch[t] == epoch
                            && self.store.state[t] == TaskState::Running;
                        if valid {
                            self.on_milestone(t);
                        }
                    }
                    Some(Ev::CkptDone { task, epoch }) => {
                        let t = task as usize;
                        let valid = self.store.epoch[t] == epoch
                            && self.store.state[t] == TaskState::Checkpointing;
                        if valid {
                            let dur = self.store.ckpt_cost[t];
                            self.finish_checkpoint(t, dur);
                        }
                    }
                    Some(Ev::RestoreDone { task, epoch }) => {
                        let t = task as usize;
                        let valid = self.store.epoch[t] == epoch
                            && self.store.state[t] == TaskState::Restoring;
                        if valid {
                            self.start_run(t);
                        }
                    }
                    Some(Ev::Storage { server, generation }) => {
                        let server = server as usize;
                        if generation != self.storage[server].generation() {
                            break 'dispatch; // stale: membership changed since scheduling
                        }
                        if let Some((op, when)) = self.storage[server].next_completion(self.now) {
                            // Only complete if the op is actually due now.
                            if when > self.now {
                                break 'dispatch;
                            }
                            if let Some(&ti) = self.storage_ops.get(&op.0) {
                                let ti = ti as usize;
                                let started = self.store.storage_op[ti].map(|(_, _, s)| s);
                                self.storage[server].remove(self.now, op);
                                self.storage_ops.remove(&op.0);
                                self.store.storage_op[ti] = None;
                                self.reschedule_storage(server);
                                let dur =
                                    started.map(|s| (self.now - s).as_secs_f64()).unwrap_or(0.0);
                                self.finish_checkpoint(ti, dur);
                            }
                        }
                    }
                }
            }
            if budget.progress_every > 0 && self.events.is_multiple_of(budget.progress_every) {
                on_progress(&SimProgress {
                    events: self.events,
                    sim_time: self.now,
                    tasks_done: self.store.len() - self.tasks_remaining,
                    tasks_total: self.store.len(),
                });
            }
        }
        status
    }

    /// Drain the observer cell, leaving a fresh default in place. Window
    /// barriers fold these drained cells into the run-level accumulator
    /// in shard order.
    pub(crate) fn take_obs(&mut self) -> O {
        std::mem::take(&mut self.obs)
    }

    /// Cumulative checkpoint-duration summary so far (both metric modes).
    pub(crate) fn ckpt_stats(&self) -> StreamStats {
        self.ckpt_stats
    }

    /// Cumulative checkpoint-duration sketch so far (both metric modes).
    pub(crate) fn ckpt_sketch(&self) -> &QuantileSketch {
        &self.ckpt_sketch
    }

    /// Events processed so far.
    pub(crate) fn events_so_far(&self) -> u64 {
        self.events
    }

    /// Tasks completed so far.
    pub(crate) fn tasks_done(&self) -> usize {
        self.store.len() - self.tasks_remaining
    }

    /// Assemble per-job records from the store (dense ids are trace order,
    /// so one running cursor walks every job's tasks without lookups).
    pub(crate) fn into_result(self, status: RunStatus) -> ClusterRunResult {
        let mut jobs = Vec::with_capacity(self.trace.jobs.len());
        let mut outcomes: Vec<TaskOutcome> = Vec::new();
        let mut lengths: Vec<f64> = Vec::new();
        let mut cursor = 0usize;
        for job in self.trace.jobs.iter() {
            outcomes.clear();
            lengths.clear();
            let mut wait = 0.0;
            let mut last_done = SimTime::from_secs_f64(job.arrival_s);
            for t in &job.tasks {
                let ti = cursor;
                cursor += 1;
                outcomes.push(self.store.outcome[ti]);
                lengths.push(t.length_s);
                wait += self.store.wait_time[ti];
                if self.store.state[ti] == TaskState::Done {
                    last_done = last_done.max(self.store.done_at[ti]);
                }
            }
            let base =
                JobRecord::from_outcomes(job.id, job.structure, job.priority, &outcomes, &lengths);
            let span = (last_done.as_secs_f64() - job.arrival_s).max(0.0);
            jobs.push(ClusterJobRecord {
                base,
                queue_wait: wait,
                span,
            });
        }
        ClusterRunResult {
            jobs,
            checkpoint_durations: self.ckpt_durations,
            checkpoint_stats: self.ckpt_stats,
            checkpoint_sketch: self.ckpt_sketch,
            max_concurrent_checkpoints: self.max_concurrent,
            makespan: self.last_activity,
            host_failures: self.host_failures,
            events: self.events,
            status,
            tasks_done: self.store.len() - self.tasks_remaining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Estimates, PolicyConfig, StorageChoice};
    use ckpt_trace::gen::generate;
    use ckpt_trace::spec::WorkloadSpec;
    use ckpt_trace::stats::trace_histories;

    fn setup(n: usize, seed: u64) -> (Trace, Estimates) {
        let mut spec = WorkloadSpec::google_like(n);
        spec.long_task_fraction = 0.0; // keep cluster tests quick
        let trace = generate(&spec, seed).expect("valid workload spec");
        let records = trace_histories(&trace);
        (trace, Estimates::from_records(&records))
    }

    #[test]
    fn all_jobs_complete() {
        let (trace, est) = setup(60, 31);
        let result = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        assert_eq!(result.jobs.len(), 60);
        for j in &result.jobs {
            assert!(j.span > 0.0);
            assert!(j.base.total_wall > 0.0);
            let wpr = j.base.wpr();
            assert!(wpr > 0.0 && wpr <= 1.0, "wpr = {wpr}");
        }
        assert!(result.makespan > SimTime::ZERO);
        assert!(result.events > 0);
        assert_eq!(result.status, RunStatus::Completed);
        assert_eq!(result.tasks_done, trace.task_count());
    }

    #[test]
    fn deterministic_replay() {
        let (trace, est) = setup(40, 32);
        let r1 = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        let r2 = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        assert_eq!(r1.jobs, r2.jobs);
        assert_eq!(r1.checkpoint_durations, r2.checkpoint_durations);
        assert_eq!(r1.events, r2.events);
    }

    /// Golden digests captured from the engine *before* the
    /// TaskStore/FastQueue rewrite (commit fad19c3's `ckpt-sim`): the
    /// rewrite is an optimization, not a semantic change, so every digest
    /// must match bit-for-bit. If a deliberate semantic change ever breaks
    /// this, re-capture the digests and say so in the commit message.
    #[test]
    fn golden_digests_match_pre_rewrite_engine() {
        fn fnv(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(0x100000001b3)
        }
        fn digest(result: &ClusterRunResult) -> u64 {
            let mut h = 0xcbf29ce484222325u64;
            for j in &result.jobs {
                h = fnv(h, j.base.job_id);
                h = fnv(h, j.base.total_work.to_bits());
                h = fnv(h, j.base.total_wall.to_bits());
                h = fnv(h, j.base.failures as u64);
                h = fnv(h, j.base.checkpoints as u64);
                h = fnv(h, j.base.rollback_loss.to_bits());
                h = fnv(h, j.base.checkpoint_time.to_bits());
                h = fnv(h, j.base.restart_time.to_bits());
                h = fnv(h, j.queue_wait.to_bits());
                h = fnv(h, j.span.to_bits());
            }
            for &d in &result.checkpoint_durations {
                h = fnv(h, d.to_bits());
            }
            h = fnv(h, result.max_concurrent_checkpoints as u64);
            h = fnv(h, result.makespan.0);
            h = fnv(h, result.host_failures);
            h
        }

        let (trace, est) = setup(60, 31);
        let plans = FailurePlanArena::build(&trace);
        let cases: Vec<(&str, ClusterConfig, PolicyConfig, u64)> = vec![
            (
                "default_formula3",
                ClusterConfig::default(),
                PolicyConfig::formula3(),
                0xb0c9f9ce211739c4,
            ),
            (
                "young",
                ClusterConfig::default(),
                PolicyConfig::young(),
                0x366cf32dc70ba92a,
            ),
            (
                "central_nfs",
                ClusterConfig::default(),
                PolicyConfig::formula3().with_storage(StorageChoice::Force(Device::CentralNfs)),
                0xbd7a52953a35067c,
            ),
            (
                "dm_nfs",
                ClusterConfig::default(),
                PolicyConfig::formula3().with_storage(StorageChoice::Force(Device::DmNfs)),
                0xe02fe080ed79a924,
            ),
            (
                "host_failures",
                ClusterConfig {
                    host_mtbf_s: Some(3_600.0),
                    ..ClusterConfig::default()
                },
                PolicyConfig::formula3(),
                0xa3b09cb1dde50639,
            ),
            (
                "none_policy",
                ClusterConfig::default(),
                PolicyConfig::none(),
                0xbde822dc3f476c61,
            ),
            (
                "adaptive",
                ClusterConfig::default(),
                PolicyConfig::formula3().with_adaptivity(true),
                0xe88bf3e9ea611681,
            ),
            (
                "tiny_cluster",
                ClusterConfig {
                    n_hosts: 2,
                    vms_per_host: 2,
                    ..ClusterConfig::default()
                },
                PolicyConfig::formula3(),
                0x18de1d1bba98bcc8,
            ),
        ];
        for (name, cfg, policy, expected) in cases {
            let r = ClusterSim::new(cfg, &trace, &est, policy).run();
            assert_eq!(
                digest(&r),
                expected,
                "{name}: output diverged from the pre-rewrite engine"
            );
            // A counting observer rides the same run without moving a
            // single output bit — and its totals satisfy the DES
            // accounting identities.
            let (observed, status, counters) = ClusterSim::new(cfg, &trace, &est, policy)
                .with_observer(ckpt_obs::Counters::new())
                .run_observed(SimBudget::UNLIMITED, |_| {});
            assert_eq!(status, RunStatus::Completed);
            assert_eq!(
                digest(&observed),
                expected,
                "{name}: counting observer changed the simulation output"
            );
            counters
                .verify_invariants(true)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(counters.get(Counter::EventsPopped), observed.events);
            assert_eq!(counters.get(Counter::HostFailures), observed.host_failures);
            // Fresh sampling attributes every build-time kill-plan lookup
            // as a miss (one lookup per task), satisfying the arena
            // identity `hits + misses == lookups` on cluster cells.
            let tasks = trace.task_count() as u64;
            assert_eq!(counters.get(Counter::PlanLookups), tasks, "{name}");
            assert_eq!(counters.get(Counter::ArenaMisses), tasks, "{name}");
            assert_eq!(counters.get(Counter::ArenaHits), 0, "{name}");

            // Routing kills through the shared plan arena is byte-identical
            // (the arena holds the same draws from the same streams), and
            // every lookup becomes a hit.
            let (arena_run, arena_status, arena_counters) =
                ClusterSim::with_plans(cfg, &trace, &est, policy, &plans)
                    .with_observer(ckpt_obs::Counters::new())
                    .run_observed(SimBudget::UNLIMITED, |_| {});
            assert_eq!(arena_status, RunStatus::Completed);
            assert_eq!(
                digest(&arena_run),
                expected,
                "{name}: arena-routed kills diverged from fresh sampling"
            );
            arena_counters
                .verify_invariants(true)
                .unwrap_or_else(|e| panic!("{name} (arena): {e}"));
            assert_eq!(arena_counters.get(Counter::PlanLookups), tasks, "{name}");
            assert_eq!(arena_counters.get(Counter::ArenaHits), tasks, "{name}");
            assert_eq!(arena_counters.get(Counter::ArenaMisses), 0, "{name}");
        }

        // The failure-model layer must not perturb the default path: a
        // config that *explicitly* selects the exponential model matches
        // the default-config digest above bit-for-bit.
        let explicit = ClusterSim::new(
            ClusterConfig {
                failure_model: FailureModelSpec::Exponential,
                ..ClusterConfig::default()
            },
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        assert_eq!(digest(&explicit), 0xb0c9f9ce211739c4);
    }

    /// Non-default failure models get their own pinned digests (captured
    /// at introduction): the hazard paths must stay exactly as
    /// deterministic and stable as the legacy one.
    #[test]
    fn golden_digests_hazard_models() {
        fn fnv(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(0x100000001b3)
        }
        fn digest(result: &ClusterRunResult) -> u64 {
            let mut h = 0xcbf29ce484222325u64;
            for j in &result.jobs {
                h = fnv(h, j.base.total_wall.to_bits());
                h = fnv(h, j.base.failures as u64);
                h = fnv(h, j.span.to_bits());
            }
            h = fnv(h, result.makespan.0);
            h = fnv(h, result.host_failures);
            h
        }

        let mut spec = WorkloadSpec::google_like(60);
        spec.long_task_fraction = 0.0;
        let cases: Vec<(&str, FailureModelSpec, u64)> = vec![
            (
                "weibull_tasks_and_hosts",
                FailureModelSpec::Weibull {
                    shape: 0.7,
                    scale: 1.0,
                },
                0x4053c235cd6b38e4,
            ),
            (
                "pareto_tasks_and_hosts",
                FailureModelSpec::Pareto {
                    shape: 1.5,
                    scale: 1.0,
                },
                0x900c63bd673a5c3f,
            ),
        ];
        for (name, model, expected) in cases {
            let trace =
                generate(&spec.clone().with_failure_model(model), 31).expect("valid workload spec");
            let records = trace_histories(&trace);
            let est = Estimates::from_records(&records);
            let cfg = ClusterConfig {
                host_mtbf_s: Some(3_600.0),
                failure_model: model,
                ..ClusterConfig::default()
            };
            let r = ClusterSim::new(cfg, &trace, &est, PolicyConfig::formula3()).run();
            let again = ClusterSim::new(cfg, &trace, &est, PolicyConfig::formula3()).run();
            assert_eq!(digest(&r), digest(&again), "{name}: nondeterministic");
            assert_eq!(digest(&r), expected, "{name}: digest drifted");
            assert!(r.host_failures > 0, "{name}: no host failures injected");
            // Arena-routed kills reproduce the hazard-model digests too.
            let plans = FailurePlanArena::build(&trace);
            let arena_run =
                ClusterSim::with_plans(cfg, &trace, &est, PolicyConfig::formula3(), &plans).run();
            assert_eq!(digest(&arena_run), expected, "{name}: arena diverged");
            // Hazard paths under a counting observer: identical bits,
            // valid accounting.
            let (observed, _, counters) =
                ClusterSim::new(cfg, &trace, &est, PolicyConfig::formula3())
                    .with_observer(ckpt_obs::Counters::new())
                    .run_observed(SimBudget::UNLIMITED, |_| {});
            assert_eq!(
                digest(&observed),
                expected,
                "{name}: observer perturbed run"
            );
            counters
                .verify_invariants(true)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn streaming_metrics_match_full_statistics() {
        let (trace, est) = setup(60, 31);
        let full = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        let streaming = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .with_metrics(MetricsMode::Streaming)
        .run();
        // Same simulation, same jobs; only the raw-duration Vec differs.
        assert_eq!(full.jobs, streaming.jobs);
        assert!(streaming.checkpoint_durations.is_empty());
        assert_eq!(full.checkpoint_stats, streaming.checkpoint_stats);
        assert_eq!(
            full.checkpoint_stats.count,
            full.checkpoint_durations.len() as u64
        );
        let naive_sum: f64 = full.checkpoint_durations.iter().sum();
        assert!((full.checkpoint_stats.total - naive_sum).abs() < 1e-9);
        // The duration sketch is identical in both modes and its median
        // tracks the exact one within the documented bound.
        assert_eq!(full.checkpoint_sketch, streaming.checkpoint_sketch);
        let mut sorted = full.checkpoint_durations.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact_p50 = sorted[((0.5 * sorted.len() as f64).ceil() as usize).max(1) - 1];
        let p50 = streaming.checkpoint_sketch.quantile(0.5);
        assert!(
            (p50 - exact_p50).abs()
                <= streaming.checkpoint_sketch.relative_error_bound() * exact_p50,
            "sketch p50 {p50} vs exact {exact_p50}"
        );
    }

    #[test]
    fn event_budget_interrupts_and_reports_progress() {
        let (trace, est) = setup(60, 31);
        let full = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        let budget = SimBudget {
            max_events: Some(full.events / 2),
            max_sim_time: None,
            progress_every: 100,
        };
        let mut snapshots = Vec::new();
        let (partial, status) = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run_with(budget, |p| snapshots.push(*p));
        assert_eq!(status, RunStatus::EventBudgetExhausted);
        assert_eq!(partial.status, status);
        assert_eq!(partial.events, full.events / 2);
        assert!(partial.tasks_done < trace.task_count());
        assert!(!snapshots.is_empty());
        // Progress is monotone in events, sim time, and completed tasks.
        for w in snapshots.windows(2) {
            assert!(w[0].events < w[1].events);
            assert!(w[0].sim_time <= w[1].sim_time);
            assert!(w[0].tasks_done <= w[1].tasks_done);
        }
        assert_eq!(snapshots[0].tasks_total, trace.task_count());
    }

    #[test]
    fn exact_event_budget_still_reports_completed() {
        // A budget of exactly the run's event count processes everything;
        // the status must say so (budgets are only checked while another
        // event exists).
        let (trace, est) = setup(60, 31);
        let full = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        let mut ticks = 0u64;
        let (result, status) = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run_with(
            SimBudget {
                max_events: Some(full.events),
                max_sim_time: None,
                progress_every: 1,
            },
            |_| ticks += 1,
        );
        assert_eq!(status, RunStatus::Completed);
        assert_eq!(result.events, full.events);
        assert_eq!(result.tasks_done, trace.task_count());
        // progress_every = 1 ticks once per processed event, including
        // stale/drained ones.
        assert_eq!(ticks, full.events);
    }

    #[test]
    fn time_budget_stops_before_the_limit() {
        let (trace, est) = setup(60, 31);
        let full = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        let limit = SimTime(full.makespan.0 / 2);
        let (partial, status) = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run_with(
            SimBudget {
                max_sim_time: Some(limit),
                ..SimBudget::UNLIMITED
            },
            |_| {},
        );
        assert_eq!(status, RunStatus::TimeBudgetExhausted);
        assert!(partial.makespan <= limit);
        assert!(partial.tasks_done < trace.task_count());
    }

    #[test]
    fn sequential_jobs_serialize_tasks() {
        let (trace, est) = setup(50, 33);
        let result = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        for (job, rec) in trace.jobs.iter().zip(&result.jobs) {
            if job.structure == JobStructure::Sequential && job.tasks.len() > 1 {
                // Span ≥ sum of task walls (tasks cannot overlap).
                assert!(
                    rec.span + 1e-6 >= rec.base.total_wall,
                    "job {}: span {} < total wall {}",
                    job.id,
                    rec.span,
                    rec.base.total_wall
                );
            }
        }
    }

    #[test]
    fn nfs_contention_vs_dmnfs() {
        let (trace, est) = setup(150, 34);
        let central = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3().with_storage(StorageChoice::Force(Device::CentralNfs)),
        )
        .run();
        let dm = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3().with_storage(StorageChoice::Force(Device::DmNfs)),
        )
        .run();
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        let m_central = mean(&central.checkpoint_durations);
        let m_dm = mean(&dm.checkpoint_durations);
        // DM-NFS spreads the load: average checkpoint no slower than central.
        assert!(
            m_dm <= m_central + 1e-9,
            "dm {m_dm} vs central {m_central} (conc {} vs {})",
            dm.max_concurrent_checkpoints,
            central.max_concurrent_checkpoints
        );
        assert!(!central.checkpoint_durations.is_empty());
    }

    #[test]
    fn ramdisk_runs_have_zero_storage_ops() {
        let (trace, est) = setup(40, 35);
        let r = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3().with_storage(StorageChoice::Force(Device::Ramdisk)),
        )
        .run();
        assert_eq!(r.max_concurrent_checkpoints, 0);
        // Checkpoints still happen (fixed-duration path).
        assert!(!r.checkpoint_durations.is_empty());
    }

    #[test]
    fn tiny_cluster_queues_tasks() {
        let (trace, est) = setup(60, 36);
        let tiny = ClusterConfig {
            n_hosts: 2,
            vms_per_host: 2,
            ..ClusterConfig::default()
        };
        let small = ClusterSim::new(tiny, &trace, &est, PolicyConfig::formula3()).run();
        let big = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        let wait_small: f64 = small.jobs.iter().map(|j| j.queue_wait).sum();
        let wait_big: f64 = big.jobs.iter().map(|j| j.queue_wait).sum();
        assert!(
            wait_small > wait_big,
            "2-host cluster should queue more: {wait_small} vs {wait_big}"
        );
    }

    #[test]
    fn host_failures_injected_and_survived() {
        let (trace, est) = setup(40, 38);
        let cfg = ClusterConfig {
            host_mtbf_s: Some(3_600.0),
            ..ClusterConfig::default()
        };
        let result = ClusterSim::new(cfg, &trace, &est, PolicyConfig::formula3()).run();
        // Everything still completes, with some host failures recorded.
        assert_eq!(result.jobs.len(), 40);
        assert!(
            result.host_failures > 0,
            "expected host failures at 1 h MTBF"
        );
        for j in &result.jobs {
            let wpr = j.base.wpr();
            assert!(wpr > 0.0 && wpr <= 1.0);
        }
        // And the run is still deterministic.
        let again = ClusterSim::new(cfg, &trace, &est, PolicyConfig::formula3()).run();
        assert_eq!(result.jobs, again.jobs);
        assert_eq!(result.host_failures, again.host_failures);
    }

    #[test]
    fn host_failures_hurt_wpr() {
        let (trace, est) = setup(40, 39);
        let calm = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        let stormy = ClusterSim::new(
            ClusterConfig {
                host_mtbf_s: Some(1_800.0),
                ..ClusterConfig::default()
            },
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        let mean = |r: &ClusterRunResult| {
            r.jobs.iter().map(|j| j.base.wpr()).sum::<f64>() / r.jobs.len() as f64
        };
        assert!(
            mean(&stormy) < mean(&calm),
            "host failures should reduce WPR: {} vs {}",
            mean(&stormy),
            mean(&calm)
        );
    }

    #[test]
    fn accounting_identity_modulo_wait() {
        // Task wall (ready→done span) = productive + ckpt + rollback +
        // restart + wait, aggregated per job.
        let (trace, est) = setup(50, 37);
        let result = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        for rec in &result.jobs {
            let parts = rec.base.total_work
                + rec.base.checkpoint_time
                + rec.base.rollback_loss
                + rec.base.restart_time
                + rec.queue_wait;
            assert!(
                (rec.base.total_wall - parts).abs() < 1e-3,
                "job {}: wall {} vs parts {}",
                rec.base.job_id,
                rec.base.total_wall,
                parts
            );
        }
    }
}
