//! The full-cluster discrete-event simulation: the stand-in for the paper's
//! testbed (32 hosts × 7 VMs, XEN, BLCR, NFS/DM-NFS).
//!
//! Compared to the fast per-task path ([`crate::runner`]), this engine adds
//! the cluster-level effects the paper's §5.1 describes:
//!
//! * **memory-constrained greedy scheduling** — a pending task is placed on
//!   the host with the maximum available memory (the paper's VM selection
//!   policy); tasks queue when no host fits;
//! * **checkpoint storage contention** — shared-disk checkpoints are
//!   operations on processor-sharing storage servers (one central NFS
//!   server, or one per host for DM-NFS with uniform-random selection);
//! * **restart migration** — a failed task re-queues and restarts on
//!   another host, paying the migration-type restart cost after placement.
//!
//! Sequential-task jobs release their next task only when the previous one
//! finishes; bag-of-tasks jobs submit all tasks at arrival.
//!
//! Staleness discipline: every task-directed event carries the task's
//! *epoch* at scheduling time; any state transition bumps the epoch, so
//! events from superseded phases are ignored on arrival. Storage completions
//! use the PS server's generation counter the same way.

use crate::blcr::{BlcrModel, Device};
use crate::event::EventQueue;
use crate::metrics::JobRecord;
use crate::policy::{plan_task, Estimates, PolicyConfig};
use crate::storage::{OpId, PsResource};
use crate::task_sim::TaskOutcome;
use crate::time::{SimDuration, SimTime};
use ckpt_stats::rng::{Rng64, SplitMix64, Xoshiro256StarStar};
use ckpt_trace::gen::{JobStructure, Trace};
use ckpt_trace::spec::FailureModel;
use std::collections::{HashMap, VecDeque};

/// Cluster topology and storage parameters (defaults = the paper's testbed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of physical hosts (paper: 32).
    pub n_hosts: usize,
    /// VM slots per host (paper: 7 one-GB VMs per host).
    pub vms_per_host: usize,
    /// Usable memory per host, MB (paper: 7 × 1 GB VM allocations).
    pub host_mem_mb: f64,
    /// Aggregate service rate of each NFS server, in uncontended
    /// checkpoint-seconds per wall second (1.0 = nominal Table 4 speed).
    pub storage_rate: f64,
    /// Optional whole-host failures: mean time between failures per host
    /// (seconds, exponential). When a host fails, every task running (or
    /// checkpointing) on it is killed and "immediately restarted on other
    /// hosts from their most recent checkpoints" (paper §2). `None`
    /// disables host failures (the default; the paper's evaluation injects
    /// failures at task granularity from the trace).
    pub host_mtbf_s: Option<f64>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            n_hosts: 32,
            vms_per_host: 7,
            host_mem_mb: 7.0 * 1024.0,
            storage_rate: 1.0,
            host_mtbf_s: None,
        }
    }
}

/// One job's result from a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterJobRecord {
    /// The per-task aggregation. Task walls are ready→done spans, so
    /// queueing delays count against WPR, as in the paper's Formula (9).
    pub base: JobRecord,
    /// Total time tasks spent waiting in the scheduler queue (seconds).
    pub queue_wait: f64,
    /// Job span: arrival of the job to completion of its last task (s).
    pub span: f64,
}

/// Result of a cluster replay.
#[derive(Debug, Clone)]
pub struct ClusterRunResult {
    /// Per-job records, in job order.
    pub jobs: Vec<ClusterJobRecord>,
    /// Durations of all completed checkpoints (for Table 2/3 style
    /// contention measurements).
    pub checkpoint_durations: Vec<f64>,
    /// Highest number of simultaneously in-flight shared-disk checkpoints.
    pub max_concurrent_checkpoints: usize,
    /// Total simulated time.
    pub makespan: SimTime,
    /// Whole-host failures injected (0 unless `host_mtbf_s` was set).
    pub host_failures: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TaskState {
    /// Not yet ready (ST successor waiting on its predecessor).
    NotReady,
    /// In the scheduler queue.
    Queued,
    /// Paying the restart (restore/migration) cost after placement.
    Restoring,
    /// Executing productive work.
    Running,
    /// Writing a checkpoint.
    Checkpointing,
    /// Finished.
    Done,
}

#[derive(Debug)]
struct TaskRt {
    job_idx: usize,
    te: f64,
    mem_mb: f64,
    state: TaskState,
    /// Bumped on every phase change; stale events are ignored.
    epoch: u64,
    device: Device,
    ckpt_cost: f64,
    restart_cost: f64,
    controller: crate::controller::Controller,
    durable: f64,
    /// Progress at the start of the current phase.
    run_base: f64,
    /// Wall time the current busy phase started.
    phase_start: SimTime,
    /// Cumulative busy (run + checkpoint) time consumed so far.
    busy: f64,
    /// Remaining pre-planned kill positions (busy-time offsets).
    pending_kills: VecDeque<f64>,
    /// Shared-disk checkpoint in flight: (server, op, started).
    storage_op: Option<(usize, OpId, SimTime)>,
    ready_at: SimTime,
    first_ready: Option<SimTime>,
    done_at: Option<SimTime>,
    wait_time: f64,
    outcome: TaskOutcome,
    host: Option<usize>,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    JobArrival(usize),
    Failure { task: usize, epoch: u64 },
    CkptDone { task: usize, epoch: u64 },
    Milestone { task: usize, epoch: u64 },
    RestoreDone { task: usize, epoch: u64 },
    Storage { server: usize, generation: u64 },
    HostFailure { host: usize },
}

/// The cluster engine. Build with [`ClusterSim::new`], then [`ClusterSim::run`].
pub struct ClusterSim<'a> {
    cfg: ClusterConfig,
    trace: &'a Trace,
    queue: EventQueue<Ev>,
    tasks: Vec<TaskRt>,
    /// trace-global task id → index in `tasks`.
    task_index: HashMap<u64, usize>,
    /// FIFO scheduler queue of task indices.
    pending: VecDeque<usize>,
    host_mem_free: Vec<f64>,
    host_tasks: Vec<usize>,
    storage: Vec<PsResource>,
    /// op id → task index.
    storage_ops: HashMap<u64, usize>,
    next_op_id: u64,
    cluster_rng: Xoshiro256StarStar,
    ckpt_durations: Vec<f64>,
    max_concurrent: usize,
    host_failures: u64,
    /// Tasks not yet completed; host-failure injection stops at zero so the
    /// event queue can drain.
    tasks_remaining: usize,
    /// Time of the last workload event (makespan; excludes trailing
    /// host-failure events after completion).
    last_activity: SimTime,
    now: SimTime,
}

impl<'a> ClusterSim<'a> {
    /// Build a cluster simulation over a trace with a policy.
    pub fn new(
        cfg: ClusterConfig,
        trace: &'a Trace,
        estimates: &'a Estimates,
        policy: PolicyConfig,
    ) -> Self {
        let blcr = BlcrModel;
        let mut tasks = Vec::new();
        let mut task_index = HashMap::new();
        for (job_idx, job) in trace.jobs.iter().enumerate() {
            for t in &job.tasks {
                let plan = plan_task(&policy, &blcr, estimates, t, job.priority);
                // The same kill plan the history/estimator saw (common
                // random numbers across policies and with the fast path).
                let kills = {
                    let mut rng = trace.failure_stream(t.id);
                    FailureModel::for_priority(job.priority).sample_plan(t.length_s, &mut rng)
                };
                task_index.insert(t.id, tasks.len());
                tasks.push(TaskRt {
                    job_idx,
                    te: t.length_s,
                    mem_mb: t.mem_mb,
                    state: TaskState::NotReady,
                    epoch: 0,
                    device: plan.device,
                    ckpt_cost: plan.ckpt_cost,
                    restart_cost: plan.restart_cost,
                    controller: plan.controller,
                    durable: 0.0,
                    run_base: 0.0,
                    phase_start: SimTime::ZERO,
                    busy: 0.0,
                    pending_kills: kills.positions.into(),
                    storage_op: None,
                    ready_at: SimTime::ZERO,
                    first_ready: None,
                    done_at: None,
                    wait_time: 0.0,
                    outcome: TaskOutcome {
                        productive: t.length_s,
                        ..TaskOutcome::default()
                    },
                    host: None,
                });
            }
        }
        let mut sim = Self {
            cfg,
            trace,
            queue: EventQueue::new(),
            tasks,
            task_index,
            pending: VecDeque::new(),
            host_mem_free: vec![cfg.host_mem_mb; cfg.n_hosts],
            host_tasks: vec![0; cfg.n_hosts],
            storage: (0..cfg.n_hosts)
                .map(|_| PsResource::new(cfg.storage_rate))
                .collect(),
            storage_ops: HashMap::new(),
            next_op_id: 0,
            cluster_rng: Xoshiro256StarStar::stream(SplitMix64::mix(trace.seed), 0xC105),
            ckpt_durations: Vec::new(),
            max_concurrent: 0,
            host_failures: 0,
            tasks_remaining: 0,
            last_activity: SimTime::ZERO,
            now: SimTime::ZERO,
        };
        sim.tasks_remaining = sim.tasks.len();
        for (i, job) in trace.jobs.iter().enumerate() {
            sim.queue
                .schedule(SimTime::from_secs_f64(job.arrival_s), Ev::JobArrival(i));
        }
        if cfg.host_mtbf_s.is_some() {
            for host in 0..cfg.n_hosts {
                sim.schedule_host_failure(host);
            }
        }
        sim
    }

    /// Draw the next whole-host failure for `host` (exponential MTBF).
    fn schedule_host_failure(&mut self, host: usize) {
        let Some(mtbf) = self.cfg.host_mtbf_s else {
            return;
        };
        let u = self.cluster_rng.next_f64_open();
        let dt = -u.ln() * mtbf;
        self.queue.schedule(
            self.now + SimDuration::from_secs_f64(dt),
            Ev::HostFailure { host },
        );
    }

    /// Mark a task ready and try to place it.
    fn make_ready(&mut self, ti: usize) {
        let t = &mut self.tasks[ti];
        t.state = TaskState::Queued;
        t.epoch += 1;
        t.ready_at = self.now;
        if t.first_ready.is_none() {
            t.first_ready = Some(self.now);
        }
        self.pending.push_back(ti);
        self.try_place();
    }

    /// Greedy placement: host with maximum free memory that fits (the
    /// paper's policy), FIFO over the queue.
    fn try_place(&mut self) {
        loop {
            let ti = match self.pending.front().copied() {
                Some(ti) => ti,
                None => return,
            };
            let mem = self.tasks[ti].mem_mb;
            let mut best: Option<(usize, f64)> = None;
            for h in 0..self.cfg.n_hosts {
                if self.host_tasks[h] < self.cfg.vms_per_host && self.host_mem_free[h] >= mem {
                    match best {
                        Some((_, free)) if free >= self.host_mem_free[h] => {}
                        _ => best = Some((h, self.host_mem_free[h])),
                    }
                }
            }
            let Some((h, _)) = best else {
                return; // head of queue does not fit anywhere: FIFO blocks
            };
            self.pending.pop_front();
            self.host_mem_free[h] -= mem;
            self.host_tasks[h] += 1;
            let is_restart = {
                let t = &mut self.tasks[ti];
                t.host = Some(h);
                t.wait_time += (self.now - t.ready_at).as_secs_f64();
                t.outcome.failures > 0
            };
            if is_restart {
                // Pay the restore (migration) cost; the task is not busy, so
                // its failure clock is paused.
                let t = &mut self.tasks[ti];
                t.state = TaskState::Restoring;
                t.epoch += 1;
                t.outcome.restart_time += t.restart_cost;
                let when = self.now + SimDuration::from_secs_f64(t.restart_cost);
                let ev = Ev::RestoreDone {
                    task: ti,
                    epoch: t.epoch,
                };
                self.queue.schedule(when, ev);
            } else {
                self.start_run(ti);
            }
        }
    }

    /// Begin (or resume) a productive run phase from the durable position.
    fn start_run(&mut self, ti: usize) {
        let now = self.now;
        let t = &mut self.tasks[ti];
        t.state = TaskState::Running;
        t.epoch += 1;
        t.run_base = t.durable;
        t.phase_start = now;
        let next_ckpt = t
            .controller
            .next_checkpoint()
            .filter(|&p| p > t.durable && p < t.te);
        let target = next_ckpt.unwrap_or(t.te);
        let run_needed = (target - t.run_base).max(0.0);
        let epoch = t.epoch;
        let milestone_at = now + SimDuration::from_secs_f64(run_needed);
        if let Some(&kill) = t.pending_kills.front() {
            let fail_at = now + SimDuration::from_secs_f64((kill - t.busy).max(0.0));
            self.queue
                .schedule(fail_at, Ev::Failure { task: ti, epoch });
        }
        self.queue
            .schedule(milestone_at, Ev::Milestone { task: ti, epoch });
    }

    /// Release the task's host resources.
    fn release_host(&mut self, ti: usize) {
        if let Some(h) = self.tasks[ti].host.take() {
            self.host_mem_free[h] += self.tasks[ti].mem_mb;
            self.host_tasks[h] -= 1;
        }
    }

    /// Kill a task: either its next planned trace kill (`from_plan`) or an
    /// exogenous event such as a whole-host failure.
    fn on_failure(&mut self, ti: usize, from_plan: bool) {
        let now = self.now;
        // Abort any in-flight storage op.
        let had_storage_op = if let Some((server, op, started)) = self.tasks[ti].storage_op.take() {
            self.storage[server].remove(now, op);
            self.storage_ops.remove(&op.0);
            self.reschedule_storage(server);
            self.tasks[ti].outcome.aborted_checkpoints += 1;
            self.tasks[ti].outcome.checkpoint_time += (now - started).as_secs_f64();
            true
        } else {
            false
        };
        let t = &mut self.tasks[ti];
        let elapsed = (now - t.phase_start).as_secs_f64();
        t.busy += elapsed;
        if from_plan {
            t.pending_kills.pop_front();
        }
        let live = match t.state {
            TaskState::Running => t.run_base + elapsed,
            // During a write the partial write time is busy but not
            // progress; progress is frozen at run_base. (Shared-disk writes
            // were already accounted in the storage-op branch above.)
            TaskState::Checkpointing => {
                if !had_storage_op {
                    t.outcome.checkpoint_time += elapsed;
                    t.outcome.aborted_checkpoints += 1;
                }
                t.run_base
            }
            _ => t.run_base,
        };
        t.outcome.failures += 1;
        t.outcome.rollback_loss += (live - t.durable).max(0.0);
        t.controller.on_rollback(t.durable);
        t.state = TaskState::Queued;
        t.epoch += 1;
        t.ready_at = now;
        // The task migrates: release this host, re-queue.
        self.release_host(ti);
        self.pending.push_back(ti);
        self.try_place();
    }

    fn on_milestone(&mut self, ti: usize) {
        let now = self.now;
        let (at_completion, target) = {
            let t = &mut self.tasks[ti];
            t.busy += (now - t.phase_start).as_secs_f64();
            let next_ckpt = t
                .controller
                .next_checkpoint()
                .filter(|&p| p > t.durable && p < t.te);
            match next_ckpt {
                Some(p) => (false, p),
                None => (true, t.te),
            }
        };
        if at_completion {
            self.complete_task(ti);
            return;
        }
        // Start a checkpoint at position `target`.
        let server_pick = match self.tasks[ti].device {
            Device::CentralNfs => Some(0),
            Device::DmNfs => Some(self.cluster_rng.next_range(self.cfg.n_hosts as u64) as usize),
            Device::Ramdisk => None,
        };
        let t = &mut self.tasks[ti];
        t.run_base = target;
        t.state = TaskState::Checkpointing;
        t.epoch += 1;
        t.phase_start = now;
        let epoch = t.epoch;
        if let Some(&kill) = t.pending_kills.front() {
            let fail_at = now + SimDuration::from_secs_f64((kill - t.busy).max(0.0));
            self.queue
                .schedule(fail_at, Ev::Failure { task: ti, epoch });
        }
        match server_pick {
            None => {
                let when = self.now + SimDuration::from_secs_f64(self.tasks[ti].ckpt_cost);
                self.queue.schedule(when, Ev::CkptDone { task: ti, epoch });
            }
            Some(server) => {
                let demand = self.tasks[ti].ckpt_cost;
                let op = OpId(self.next_op_id);
                self.next_op_id += 1;
                self.tasks[ti].storage_op = Some((server, op, now));
                self.storage[server].add(now, op, demand);
                self.storage_ops.insert(op.0, ti);
                self.max_concurrent = self.max_concurrent.max(self.storage_ops.len());
                self.reschedule_storage(server);
            }
        }
    }

    /// (Re-)schedule the pending completion event of a PS server.
    fn reschedule_storage(&mut self, server: usize) {
        if let Some((_, when)) = self.storage[server].next_completion(self.now) {
            let generation = self.storage[server].generation();
            self.queue
                .schedule(when, Ev::Storage { server, generation });
        }
    }

    fn finish_checkpoint(&mut self, ti: usize, duration: f64) {
        let now = self.now;
        let t = &mut self.tasks[ti];
        t.busy += (now - t.phase_start).as_secs_f64();
        t.outcome.checkpoint_time += duration;
        t.outcome.checkpoints += 1;
        t.durable = t.run_base;
        t.controller.on_checkpoint_complete(t.durable);
        self.ckpt_durations.push(duration);
        self.start_run(ti);
    }

    fn complete_task(&mut self, ti: usize) {
        let now = self.now;
        {
            let t = &mut self.tasks[ti];
            t.state = TaskState::Done;
            t.epoch += 1;
            t.done_at = Some(now);
            let span = (now - t.first_ready.unwrap_or(now)).as_secs_f64();
            t.outcome.wall = span;
        }
        self.tasks_remaining -= 1;
        self.release_host(ti);
        // ST jobs: release the successor task.
        let job = &self.trace.jobs[self.tasks[ti].job_idx];
        if job.structure == JobStructure::Sequential {
            let my_idx = job
                .tasks
                .iter()
                .find(|t| self.task_index[&t.id] == ti)
                .map(|t| t.idx)
                .expect("task belongs to its job");
            if let Some(next) = job.tasks.iter().find(|t| t.idx == my_idx + 1) {
                let ni = self.task_index[&next.id];
                self.make_ready(ni);
                return; // make_ready already tried placement
            }
        }
        self.try_place();
    }

    /// Run the simulation to completion and collect results.
    pub fn run(mut self) -> ClusterRunResult {
        while let Some((time, _, ev)) = self.queue.pop() {
            debug_assert!(time >= self.now);
            self.now = time;
            if !matches!(ev, Ev::HostFailure { .. }) {
                self.last_activity = time;
            }
            match ev {
                Ev::JobArrival(job_idx) => {
                    let job = &self.trace.jobs[job_idx];
                    let ready: Vec<usize> = match job.structure {
                        JobStructure::Sequential => job
                            .tasks
                            .iter()
                            .filter(|t| t.idx == 0)
                            .map(|t| self.task_index[&t.id])
                            .collect(),
                        JobStructure::BagOfTasks => {
                            job.tasks.iter().map(|t| self.task_index[&t.id]).collect()
                        }
                    };
                    for ti in ready {
                        self.make_ready(ti);
                    }
                }
                Ev::Failure { task, epoch } => {
                    let valid = self.tasks[task].epoch == epoch
                        && matches!(
                            self.tasks[task].state,
                            TaskState::Running | TaskState::Checkpointing
                        );
                    if valid {
                        self.on_failure(task, true);
                    }
                }
                Ev::HostFailure { host } => {
                    if self.tasks_remaining == 0 {
                        continue; // workload done: stop injecting, let the queue drain
                    }
                    self.host_failures += 1;
                    // Kill every task currently occupying this host; they
                    // restart elsewhere from their last durable checkpoint.
                    let victims: Vec<usize> = self
                        .tasks
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| {
                            t.host == Some(host)
                                && matches!(t.state, TaskState::Running | TaskState::Checkpointing)
                        })
                        .map(|(i, _)| i)
                        .collect();
                    for ti in victims {
                        self.on_failure(ti, false);
                    }
                    self.schedule_host_failure(host);
                }
                Ev::Milestone { task, epoch } => {
                    let valid = self.tasks[task].epoch == epoch
                        && self.tasks[task].state == TaskState::Running;
                    if valid {
                        self.on_milestone(task);
                    }
                }
                Ev::CkptDone { task, epoch } => {
                    let valid = self.tasks[task].epoch == epoch
                        && self.tasks[task].state == TaskState::Checkpointing;
                    if valid {
                        let dur = self.tasks[task].ckpt_cost;
                        self.finish_checkpoint(task, dur);
                    }
                }
                Ev::RestoreDone { task, epoch } => {
                    let valid = self.tasks[task].epoch == epoch
                        && self.tasks[task].state == TaskState::Restoring;
                    if valid {
                        self.start_run(task);
                    }
                }
                Ev::Storage { server, generation } => {
                    if generation != self.storage[server].generation() {
                        continue; // stale: membership changed since scheduling
                    }
                    if let Some((op, when)) = self.storage[server].next_completion(self.now) {
                        // Only complete if the op is actually due now.
                        if when > self.now {
                            continue;
                        }
                        if let Some(&ti) = self.storage_ops.get(&op.0) {
                            let started = self.tasks[ti].storage_op.map(|(_, _, s)| s);
                            self.storage[server].remove(self.now, op);
                            self.storage_ops.remove(&op.0);
                            self.tasks[ti].storage_op = None;
                            self.reschedule_storage(server);
                            let dur = started.map(|s| (self.now - s).as_secs_f64()).unwrap_or(0.0);
                            self.finish_checkpoint(ti, dur);
                        }
                    }
                }
            }
        }

        // Assemble per-job records.
        let mut jobs = Vec::with_capacity(self.trace.jobs.len());
        for job in self.trace.jobs.iter() {
            let mut outcomes = Vec::with_capacity(job.tasks.len());
            let mut lengths = Vec::with_capacity(job.tasks.len());
            let mut wait = 0.0;
            let mut last_done = SimTime::from_secs_f64(job.arrival_s);
            for t in &job.tasks {
                let rt = &self.tasks[self.task_index[&t.id]];
                outcomes.push(rt.outcome);
                lengths.push(t.length_s);
                wait += rt.wait_time;
                if let Some(d) = rt.done_at {
                    last_done = last_done.max(d);
                }
            }
            let base =
                JobRecord::from_outcomes(job.id, job.structure, job.priority, &outcomes, &lengths);
            let span = (last_done.as_secs_f64() - job.arrival_s).max(0.0);
            jobs.push(ClusterJobRecord {
                base,
                queue_wait: wait,
                span,
            });
        }
        ClusterRunResult {
            jobs,
            checkpoint_durations: self.ckpt_durations,
            max_concurrent_checkpoints: self.max_concurrent,
            makespan: self.last_activity,
            host_failures: self.host_failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Estimates, PolicyConfig, StorageChoice};
    use ckpt_trace::gen::generate;
    use ckpt_trace::spec::WorkloadSpec;
    use ckpt_trace::stats::trace_histories;

    fn setup(n: usize, seed: u64) -> (Trace, Estimates) {
        let mut spec = WorkloadSpec::google_like(n);
        spec.long_task_fraction = 0.0; // keep cluster tests quick
        let trace = generate(&spec, seed);
        let records = trace_histories(&trace);
        (trace, Estimates::from_records(&records))
    }

    #[test]
    fn all_jobs_complete() {
        let (trace, est) = setup(60, 31);
        let result = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        assert_eq!(result.jobs.len(), 60);
        for j in &result.jobs {
            assert!(j.span > 0.0);
            assert!(j.base.total_wall > 0.0);
            let wpr = j.base.wpr();
            assert!(wpr > 0.0 && wpr <= 1.0, "wpr = {wpr}");
        }
        assert!(result.makespan > SimTime::ZERO);
    }

    #[test]
    fn deterministic_replay() {
        let (trace, est) = setup(40, 32);
        let r1 = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        let r2 = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        assert_eq!(r1.jobs, r2.jobs);
        assert_eq!(r1.checkpoint_durations, r2.checkpoint_durations);
    }

    #[test]
    fn sequential_jobs_serialize_tasks() {
        let (trace, est) = setup(50, 33);
        let result = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        for (job, rec) in trace.jobs.iter().zip(&result.jobs) {
            if job.structure == JobStructure::Sequential && job.tasks.len() > 1 {
                // Span ≥ sum of task walls (tasks cannot overlap).
                assert!(
                    rec.span + 1e-6 >= rec.base.total_wall,
                    "job {}: span {} < total wall {}",
                    job.id,
                    rec.span,
                    rec.base.total_wall
                );
            }
        }
    }

    #[test]
    fn nfs_contention_vs_dmnfs() {
        let (trace, est) = setup(150, 34);
        let central = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3().with_storage(StorageChoice::Force(Device::CentralNfs)),
        )
        .run();
        let dm = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3().with_storage(StorageChoice::Force(Device::DmNfs)),
        )
        .run();
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        let m_central = mean(&central.checkpoint_durations);
        let m_dm = mean(&dm.checkpoint_durations);
        // DM-NFS spreads the load: average checkpoint no slower than central.
        assert!(
            m_dm <= m_central + 1e-9,
            "dm {m_dm} vs central {m_central} (conc {} vs {})",
            dm.max_concurrent_checkpoints,
            central.max_concurrent_checkpoints
        );
        assert!(!central.checkpoint_durations.is_empty());
    }

    #[test]
    fn ramdisk_runs_have_zero_storage_ops() {
        let (trace, est) = setup(40, 35);
        let r = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3().with_storage(StorageChoice::Force(Device::Ramdisk)),
        )
        .run();
        assert_eq!(r.max_concurrent_checkpoints, 0);
        // Checkpoints still happen (fixed-duration path).
        assert!(!r.checkpoint_durations.is_empty());
    }

    #[test]
    fn tiny_cluster_queues_tasks() {
        let (trace, est) = setup(60, 36);
        let tiny = ClusterConfig {
            n_hosts: 2,
            vms_per_host: 2,
            ..ClusterConfig::default()
        };
        let small = ClusterSim::new(tiny, &trace, &est, PolicyConfig::formula3()).run();
        let big = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        let wait_small: f64 = small.jobs.iter().map(|j| j.queue_wait).sum();
        let wait_big: f64 = big.jobs.iter().map(|j| j.queue_wait).sum();
        assert!(
            wait_small > wait_big,
            "2-host cluster should queue more: {wait_small} vs {wait_big}"
        );
    }

    #[test]
    fn host_failures_injected_and_survived() {
        let (trace, est) = setup(40, 38);
        let cfg = ClusterConfig {
            host_mtbf_s: Some(3_600.0),
            ..ClusterConfig::default()
        };
        let result = ClusterSim::new(cfg, &trace, &est, PolicyConfig::formula3()).run();
        // Everything still completes, with some host failures recorded.
        assert_eq!(result.jobs.len(), 40);
        assert!(
            result.host_failures > 0,
            "expected host failures at 1 h MTBF"
        );
        for j in &result.jobs {
            let wpr = j.base.wpr();
            assert!(wpr > 0.0 && wpr <= 1.0);
        }
        // And the run is still deterministic.
        let again = ClusterSim::new(cfg, &trace, &est, PolicyConfig::formula3()).run();
        assert_eq!(result.jobs, again.jobs);
        assert_eq!(result.host_failures, again.host_failures);
    }

    #[test]
    fn host_failures_hurt_wpr() {
        let (trace, est) = setup(40, 39);
        let calm = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        let stormy = ClusterSim::new(
            ClusterConfig {
                host_mtbf_s: Some(1_800.0),
                ..ClusterConfig::default()
            },
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        let mean = |r: &ClusterRunResult| {
            r.jobs.iter().map(|j| j.base.wpr()).sum::<f64>() / r.jobs.len() as f64
        };
        assert!(
            mean(&stormy) < mean(&calm),
            "host failures should reduce WPR: {} vs {}",
            mean(&stormy),
            mean(&calm)
        );
    }

    #[test]
    fn accounting_identity_modulo_wait() {
        // Task wall (ready→done span) = productive + ckpt + rollback +
        // restart + wait, aggregated per job.
        let (trace, est) = setup(50, 37);
        let result = ClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
        )
        .run();
        for rec in &result.jobs {
            let parts = rec.base.total_work
                + rec.base.checkpoint_time
                + rec.base.rollback_loss
                + rec.base.restart_time
                + rec.queue_wait;
            assert!(
                (rec.base.total_wall - parts).abs() < 1e-3,
                "job {}: wall {} vs parts {}",
                rec.base.job_id,
                rec.base.total_wall,
                parts
            );
        }
    }
}
