//! Policy drivers: turn a [`PolicyKind`] plus an estimator configuration
//! into per-task checkpoint controllers and device choices — the glue the
//! paper's evaluation section describes in §5.1/§5.2.

use crate::blcr::{BlcrModel, Device};
use crate::controller::{Controller, FixedSchedule};
use ckpt_policy::adaptive::AdaptiveCheckpointer;
use ckpt_policy::daly::daly_interval_count;
use ckpt_policy::estimator::{Estimate, GroupedEstimator};
use ckpt_policy::optimal::optimal_interval_count;
use ckpt_policy::schedule::EquidistantSchedule;
use ckpt_policy::storage::{choose_storage, DeviceCosts};
use ckpt_policy::young::young_interval_count;
use ckpt_policy::PolicyKind;
use ckpt_trace::gen::TaskSpec;
use ckpt_trace::stats::TaskRecord;
use std::collections::HashMap;

/// How MNOF/MTBF are predicted for a task — the axis of Table 6 vs
/// Figures 9–13.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimatorKind {
    /// Per-task oracle: the task's own recorded failure count and mean
    /// interval ("precise prediction", Table 6).
    Oracle,
    /// Group statistics by priority, over tasks with length ≤ `limit`
    /// (Figures 9–13; the paper uses limit = ∞ for the month-scale runs and
    /// the RL value for the restricted-length runs).
    PerPriority {
        /// Task-length cutoff for the estimation population (seconds).
        limit: f64,
    },
    /// One pooled estimate for everything (ablation baseline).
    Global {
        /// Task-length cutoff for the estimation population (seconds).
        limit: f64,
    },
}

/// How the checkpoint storage device is chosen per task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageChoice {
    /// §4.2.2's expected-cost comparison per task.
    Auto,
    /// Force one device for every task.
    Force(Device),
}

/// Adjustments layered on top of the BLCR cost model — the knob parameter
/// sweeps turn to explore cheaper/pricier checkpointing without touching
/// the calibrated Figure 7 tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostTweak {
    /// Multiplier on the per-checkpoint cost `C`.
    pub ckpt_scale: f64,
    /// Multiplier on the per-restart cost `R`.
    pub restart_scale: f64,
    /// Absolute override for `C` (seconds), applied after scaling.
    pub ckpt_override: Option<f64>,
    /// Absolute override for `R` (seconds), applied after scaling.
    pub restart_override: Option<f64>,
}

impl Default for CostTweak {
    fn default() -> Self {
        Self {
            ckpt_scale: 1.0,
            restart_scale: 1.0,
            ckpt_override: None,
            restart_override: None,
        }
    }
}

impl CostTweak {
    /// Identity tweak (the calibrated model as-is).
    pub fn identity() -> Self {
        Self::default()
    }

    /// Apply to a model checkpoint cost.
    pub fn apply_ckpt(&self, c: f64) -> f64 {
        self.ckpt_override.unwrap_or(c * self.ckpt_scale)
    }

    /// Apply to a model restart cost.
    pub fn apply_restart(&self, r: f64) -> f64 {
        self.restart_override.unwrap_or(r * self.restart_scale)
    }
}

/// Full policy configuration for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyConfig {
    /// Which checkpoint-placement formula.
    pub kind: PolicyKind,
    /// Which MNOF/MTBF estimator feeds it.
    pub estimator: EstimatorKind,
    /// Whether Formula (3) adapts to MNOF changes (Algorithm 1) or keeps the
    /// start-of-task schedule (the "static algorithm" of Figure 14).
    pub adaptive: bool,
    /// Checkpoint storage selection.
    pub storage: StorageChoice,
    /// Checkpoint/restart cost adjustments (identity = calibrated model).
    pub cost: CostTweak,
}

impl PolicyConfig {
    /// The paper's primary configuration: Formula (3) with per-priority
    /// estimation, static schedule, automatic storage choice.
    pub fn formula3() -> Self {
        Self {
            kind: PolicyKind::Formula3,
            estimator: EstimatorKind::PerPriority {
                limit: f64::INFINITY,
            },
            adaptive: false,
            storage: StorageChoice::Auto,
            cost: CostTweak::identity(),
        }
    }

    /// Young's-formula baseline with the same estimation granularity.
    pub fn young() -> Self {
        Self {
            kind: PolicyKind::Young,
            ..Self::formula3()
        }
    }

    /// Daly's-formula baseline.
    pub fn daly() -> Self {
        Self {
            kind: PolicyKind::Daly,
            ..Self::formula3()
        }
    }

    /// No checkpointing at all.
    pub fn none() -> Self {
        Self {
            kind: PolicyKind::None,
            ..Self::formula3()
        }
    }

    /// Builder-style: set the estimator.
    pub fn with_estimator(mut self, estimator: EstimatorKind) -> Self {
        self.estimator = estimator;
        self
    }

    /// Builder-style: enable Algorithm 1 adaptivity.
    pub fn with_adaptivity(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Builder-style: set the storage choice.
    pub fn with_storage(mut self, storage: StorageChoice) -> Self {
        self.storage = storage;
        self
    }

    /// Builder-style: set the cost tweak.
    pub fn with_cost(mut self, cost: CostTweak) -> Self {
        self.cost = cost;
        self
    }

    /// Builder-style: scale the per-checkpoint cost (a common sweep axis).
    pub fn with_ckpt_cost_scale(mut self, scale: f64) -> Self {
        self.cost.ckpt_scale = scale;
        self
    }
}

/// Precomputed estimates a run draws from: group statistics plus the
/// per-task oracle.
///
/// Group lookups are memoized per `(pooled, priority, limit)`: a grouped
/// estimate is a pure function of the ingested histories, but computing it
/// scans the whole priority group — which made planning O(tasks ×
/// group size) before the cache. The memo returns the exact value the
/// uncached scan produces, so results are bit-identical; it only removes
/// the repeated work.
#[derive(Debug)]
pub struct Estimates {
    groups: GroupedEstimator,
    per_task: HashMap<u64, (u32, Option<f64>)>,
    /// Pooled fallback MTBF for tasks/groups with no recorded intervals.
    fallback_mtbf: f64,
    /// Pooled fallback per-second failure rate.
    fallback_mnof_per_sec: f64,
    /// Memoized group estimates keyed by `(pooled, priority, limit bits)`.
    /// Read-mostly: each key is computed once per run configuration.
    cache: std::sync::RwLock<HashMap<(bool, u8, u64), Option<Estimate>>>,
}

impl Clone for Estimates {
    fn clone(&self) -> Self {
        Self {
            groups: self.groups.clone(),
            per_task: self.per_task.clone(),
            fallback_mtbf: self.fallback_mtbf,
            fallback_mnof_per_sec: self.fallback_mnof_per_sec,
            cache: std::sync::RwLock::new(
                self.cache.read().expect("estimate cache poisoned").clone(),
            ),
        }
    }
}

impl Estimates {
    /// Build from trace histories.
    pub fn from_records(records: &[TaskRecord]) -> Self {
        let groups = ckpt_trace::stats::estimator_from_records(records);
        let per_task = ckpt_trace::stats::per_task_oracle(records);
        let pooled = groups.estimate_pooled(f64::INFINITY);
        let (fallback_mtbf, fallback_mnof_per_sec) = match pooled {
            Some(p) => (
                if p.mtbf.is_finite() { p.mtbf } else { 1e9 },
                if p.mean_length > 0.0 {
                    p.mnof / p.mean_length
                } else {
                    0.0
                },
            ),
            None => (1e9, 0.0),
        };
        Self {
            groups,
            per_task,
            fallback_mtbf,
            fallback_mnof_per_sec,
            cache: std::sync::RwLock::new(HashMap::new()),
        }
    }

    /// Memoized [`GroupedEstimator::estimate`] / `estimate_pooled` lookup.
    fn cached_estimate(&self, pooled: bool, priority: u8, limit: f64) -> Option<Estimate> {
        let key = (pooled, priority, limit.to_bits());
        if let Some(e) = self
            .cache
            .read()
            .expect("estimate cache poisoned")
            .get(&key)
        {
            return *e;
        }
        let e = if pooled {
            self.groups.estimate_pooled(limit)
        } else {
            self.groups.estimate(priority, limit)
        };
        self.cache
            .write()
            .expect("estimate cache poisoned")
            .insert(key, e);
        e
    }

    /// The grouped estimator (Table 7 queries).
    pub fn groups(&self) -> &GroupedEstimator {
        &self.groups
    }

    /// Predicted `(MNOF, MTBF)` for a task under an estimator kind.
    ///
    /// Group estimators use the **raw group MNOF** — the paper's estimator.
    /// This works because MNOF is nearly length-independent per priority in
    /// Google workloads (Table 7: 1.06 → 1.27 for priority 2 over a ~50×
    /// length range), which is precisely the paper's argument for preferring
    /// the failure *count* over failure *intervals*.
    pub fn predict(&self, kind: EstimatorKind, task: &TaskSpec, priority: u8) -> (f64, f64) {
        match kind {
            EstimatorKind::Oracle => {
                let (count, mtbf) = self.per_task.get(&task.id).copied().unwrap_or((0, None));
                (count as f64, mtbf.unwrap_or(self.fallback_mtbf))
            }
            EstimatorKind::PerPriority { limit } => {
                match self.cached_estimate(false, priority, limit) {
                    Some(e) => {
                        let mtbf = if e.mtbf.is_finite() {
                            e.mtbf
                        } else {
                            self.fallback_mtbf
                        };
                        (e.mnof, mtbf)
                    }
                    None => (
                        self.fallback_mnof_per_sec * task.length_s,
                        self.fallback_mtbf,
                    ),
                }
            }
            EstimatorKind::Global { limit } => match self.cached_estimate(true, 0, limit) {
                Some(e) => {
                    let mtbf = if e.mtbf.is_finite() {
                        e.mtbf
                    } else {
                        self.fallback_mtbf
                    };
                    (e.mnof, mtbf)
                }
                None => (
                    self.fallback_mnof_per_sec * task.length_s,
                    self.fallback_mtbf,
                ),
            },
        }
    }
}

/// Everything the executor needs to run one task under a policy.
#[derive(Debug, Clone)]
pub struct TaskPlan {
    /// The controller driving checkpoint positions.
    pub controller: Controller,
    /// Chosen storage device.
    pub device: Device,
    /// Per-checkpoint cost `C` (uncontended).
    pub ckpt_cost: f64,
    /// Per-restart cost `R`.
    pub restart_cost: f64,
    /// The MNOF prediction that was used (diagnostics / flip scaling).
    pub mnof: f64,
    /// The MTBF prediction that was used.
    pub mtbf: f64,
    /// The interval count the policy chose.
    pub intervals: u32,
}

/// Build the execution plan for one task.
pub fn plan_task(
    cfg: &PolicyConfig,
    blcr: &BlcrModel,
    estimates: &Estimates,
    task: &TaskSpec,
    priority: u8,
) -> TaskPlan {
    let (mnof, mtbf) = estimates.predict(cfg.estimator, task, priority);
    let te = task.length_s;
    let mem = task.mem_mb;

    // Device: §4.2.2 expected-cost comparison (or forced). Cost tweaks are
    // applied before the comparison so the decision sees the same `C`/`R`
    // the executor will pay.
    let local = DeviceCosts::new(
        cfg.cost
            .apply_ckpt(blcr.checkpoint_cost(Device::Ramdisk, mem)),
        cfg.cost
            .apply_restart(blcr.restart_cost_for_device(Device::Ramdisk, mem)),
    )
    .expect("cost model yields positive costs");
    let shared = DeviceCosts::new(
        cfg.cost
            .apply_ckpt(blcr.checkpoint_cost(Device::DmNfs, mem)),
        cfg.cost
            .apply_restart(blcr.restart_cost_for_device(Device::DmNfs, mem)),
    )
    .expect("cost model yields positive costs");
    let device = match cfg.storage {
        StorageChoice::Force(d) => d,
        StorageChoice::Auto => match choose_storage(te, mnof, local, shared) {
            Ok((ckpt_policy::storage::StoragePick::Local, ..)) => Device::Ramdisk,
            Ok((ckpt_policy::storage::StoragePick::Shared, ..)) => Device::DmNfs,
            Err(_) => Device::Ramdisk,
        },
    };
    let ckpt_cost = cfg.cost.apply_ckpt(blcr.checkpoint_cost(device, mem));
    let restart_cost = cfg
        .cost
        .apply_restart(blcr.restart_cost_for_device(device, mem));

    // Interval count per the policy formula.
    let intervals: u32 = match cfg.kind {
        PolicyKind::Formula3 => optimal_interval_count(te, ckpt_cost, mnof)
            .map(|x| x.rounded())
            .unwrap_or(1),
        PolicyKind::Young => young_interval_count(te, ckpt_cost, mtbf).unwrap_or(1),
        PolicyKind::Daly => daly_interval_count(te, ckpt_cost, mtbf).unwrap_or(1),
        PolicyKind::None => 1,
    };

    let controller = if cfg.adaptive && cfg.kind == PolicyKind::Formula3 {
        match AdaptiveCheckpointer::new(te, ckpt_cost, mnof) {
            Ok(a) => Controller::Adaptive(a),
            Err(_) => Controller::Fixed(FixedSchedule::none()),
        }
    } else if intervals <= 1 {
        Controller::Fixed(FixedSchedule::none())
    } else {
        Controller::Fixed(FixedSchedule::new(
            &EquidistantSchedule::new(te, intervals).expect("validated inputs"),
        ))
    };

    TaskPlan {
        controller,
        device,
        ckpt_cost,
        restart_cost,
        mnof,
        mtbf,
        intervals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_trace::gen::generate;
    use ckpt_trace::spec::WorkloadSpec;
    use ckpt_trace::stats::trace_histories;

    fn setup() -> (ckpt_trace::gen::Trace, Estimates) {
        let trace = generate(&WorkloadSpec::google_like(600), 55).expect("valid workload spec");
        let records = trace_histories(&trace);
        let est = Estimates::from_records(&records);
        (trace, est)
    }

    #[test]
    fn oracle_prediction_matches_history() {
        let (trace, est) = setup();
        let records = trace_histories(&trace);
        for r in records.iter().take(50) {
            let job = &trace.jobs[r.job_id as usize];
            let task = job.tasks.iter().find(|t| t.id == r.task_id).unwrap();
            let (mnof, _) = est.predict(EstimatorKind::Oracle, task, job.priority);
            assert_eq!(mnof, r.history.failure_count as f64);
        }
    }

    #[test]
    fn group_prediction_is_length_free() {
        // The paper's estimator hands every task of a priority group the
        // same MNOF and MTBF, regardless of its length.
        let (trace, est) = setup();
        let job = &trace.jobs[0];
        let mut t1 = job.tasks[0].clone();
        let mut t2 = job.tasks[0].clone();
        t1.length_s = 100.0;
        t2.length_s = 1000.0;
        let kind = EstimatorKind::PerPriority {
            limit: f64::INFINITY,
        };
        let (m1, tb1) = est.predict(kind, &t1, job.priority);
        let (m2, tb2) = est.predict(kind, &t2, job.priority);
        assert_eq!(m1, m2, "group MNOF is per-task, not per-second");
        assert_eq!(tb1, tb2, "group MTBF is length-independent");
    }

    #[test]
    fn formula3_plans_more_intervals_than_young_under_inflated_mtbf() {
        // The paper's core claim at plan level: per-priority heavy-tail MTBF
        // makes Young checkpoint less than Formula (3) for short tasks.
        let (trace, est) = setup();
        let blcr = BlcrModel;
        let mut f3_total = 0u64;
        let mut yg_total = 0u64;
        let mut n = 0;
        for job in &trace.jobs {
            for task in &job.tasks {
                if task.length_s > 1000.0 {
                    continue; // the short tasks are where the effect lives
                }
                let f3 = plan_task(&PolicyConfig::formula3(), &blcr, &est, task, job.priority);
                let yg = plan_task(&PolicyConfig::young(), &blcr, &est, task, job.priority);
                f3_total += f3.intervals as u64;
                yg_total += yg.intervals as u64;
                n += 1;
            }
        }
        assert!(n > 100);
        assert!(
            f3_total > yg_total,
            "Formula3 {f3_total} vs Young {yg_total} over {n} short tasks"
        );
    }

    #[test]
    fn none_policy_never_checkpoints() {
        let (trace, est) = setup();
        let blcr = BlcrModel;
        let job = &trace.jobs[0];
        let plan = plan_task(
            &PolicyConfig::none(),
            &blcr,
            &est,
            &job.tasks[0],
            job.priority,
        );
        assert_eq!(plan.intervals, 1);
        assert_eq!(plan.controller.next_checkpoint(), None);
    }

    #[test]
    fn forced_storage_respected() {
        let (trace, est) = setup();
        let blcr = BlcrModel;
        let job = &trace.jobs[0];
        for dev in [Device::Ramdisk, Device::CentralNfs, Device::DmNfs] {
            let cfg = PolicyConfig::formula3().with_storage(StorageChoice::Force(dev));
            let plan = plan_task(&cfg, &blcr, &est, &job.tasks[0], job.priority);
            assert_eq!(plan.device, dev);
        }
    }

    #[test]
    fn auto_storage_prefers_local_for_typical_tasks() {
        // For the common case (few failures, small memory) the paper's
        // example picks local ramdisk; our planner should mostly agree.
        let (trace, est) = setup();
        let blcr = BlcrModel;
        let mut local = 0;
        let mut shared = 0;
        for job in trace.jobs.iter().take(200) {
            for task in &job.tasks {
                let plan = plan_task(&PolicyConfig::formula3(), &blcr, &est, task, job.priority);
                match plan.device {
                    Device::Ramdisk => local += 1,
                    _ => shared += 1,
                }
            }
        }
        assert!(local > shared, "local {local} vs shared {shared}");
    }

    #[test]
    fn adaptive_config_builds_adaptive_controller() {
        let (trace, est) = setup();
        let blcr = BlcrModel;
        let job = &trace.jobs[0];
        let cfg = PolicyConfig::formula3().with_adaptivity(true);
        let plan = plan_task(&cfg, &blcr, &est, &job.tasks[0], job.priority);
        assert!(matches!(plan.controller, Controller::Adaptive(_)));
    }

    #[test]
    fn cost_tweak_scales_and_overrides_plan_costs() {
        let (trace, est) = setup();
        let blcr = BlcrModel;
        let job = &trace.jobs[0];
        let task = &job.tasks[0];
        let base_cfg = PolicyConfig::formula3().with_storage(StorageChoice::Force(Device::Ramdisk));
        let base = plan_task(&base_cfg, &blcr, &est, task, job.priority);

        let scaled_cfg = base_cfg.with_ckpt_cost_scale(3.0);
        let scaled = plan_task(&scaled_cfg, &blcr, &est, task, job.priority);
        assert!((scaled.ckpt_cost - 3.0 * base.ckpt_cost).abs() < 1e-12);
        // Pricier checkpoints ⇒ weakly fewer planned intervals (Theorem 1).
        assert!(scaled.intervals <= base.intervals);

        let forced_cfg = base_cfg.with_cost(CostTweak {
            ckpt_override: Some(2.5),
            restart_override: Some(1.25),
            ..CostTweak::identity()
        });
        let forced = plan_task(&forced_cfg, &blcr, &est, task, job.priority);
        assert_eq!(forced.ckpt_cost, 2.5);
        assert_eq!(forced.restart_cost, 1.25);
    }

    #[test]
    fn identity_tweak_changes_nothing() {
        let (trace, est) = setup();
        let blcr = BlcrModel;
        let job = &trace.jobs[1];
        let a = plan_task(
            &PolicyConfig::formula3(),
            &blcr,
            &est,
            &job.tasks[0],
            job.priority,
        );
        let b = plan_task(
            &PolicyConfig::formula3().with_cost(CostTweak::identity()),
            &blcr,
            &est,
            &job.tasks[0],
            job.priority,
        );
        assert_eq!(a.ckpt_cost, b.ckpt_cost);
        assert_eq!(a.intervals, b.intervals);
        assert_eq!(a.device, b.device);
    }

    #[test]
    fn config_builders() {
        let c = PolicyConfig::formula3()
            .with_estimator(EstimatorKind::Oracle)
            .with_adaptivity(true)
            .with_storage(StorageChoice::Force(Device::Ramdisk));
        assert_eq!(c.estimator, EstimatorKind::Oracle);
        assert!(c.adaptive);
        assert_eq!(c.storage, StorageChoice::Force(Device::Ramdisk));
        assert_eq!(PolicyConfig::daly().kind, PolicyKind::Daly);
    }
}
