//! Streaming per-cell aggregation: each metric is reduced to a compact
//! [`MetricSummary`] (count, mean, p50, p99, min, max) as its cell
//! completes — raw metric vectors are transient, only summaries reach the
//! results. (Shared replays do stay cached for the sweep's lifetime so
//! filter-only cells can reuse them; see the executor's run cache.)

/// Order-statistics summary of one metric over one grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Number of samples aggregated.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl MetricSummary {
    /// Summarize a batch of values. Empty input yields `count = 0` and NaN
    /// statistics (exported as nulls).
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                count: 0,
                mean: f64::NAN,
                p50: f64::NAN,
                p99: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("metric values must not be NaN"));
        let n = sorted.len();
        let rank = |q: f64| -> f64 {
            // Nearest-rank percentile: smallest value with cumulative
            // probability ≥ q.
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            sorted[idx]
        };
        Self {
            count: n,
            mean: sorted.iter().sum::<f64>() / n as f64,
            p50: rank(0.50),
            p99: rank(0.99),
            min: sorted[0],
            max: sorted[n - 1],
        }
    }

    /// Summarize a single value (degenerate but common for analytic cells).
    pub fn from_value(v: f64) -> Self {
        Self::from_values(&[v])
    }

    /// Summarize a streaming fold ([`ckpt_sim::metrics::StreamDist`]):
    /// count/mean/min/max are exact, and p50/p99 come from the fold's
    /// mergeable quantile sketch — exact in rank (the same nearest-rank
    /// rule as [`MetricSummary::from_values`]) and within the sketch's
    /// documented relative value-error bound (≈ 1 %; see
    /// [`ckpt_stats::sketch`]).
    pub fn from_stream(d: &ckpt_sim::metrics::StreamDist) -> Self {
        let s = &d.stats;
        if s.count == 0 {
            return Self::from_values(&[]);
        }
        Self {
            count: s.count as usize,
            mean: s.mean(),
            p50: d.sketch.quantile(0.50),
            p99: d.sketch.quantile(0.99),
            min: s.min,
            max: s.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_batch() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = MetricSummary::from_values(&values);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn summary_is_order_invariant() {
        let a = MetricSummary::from_values(&[3.0, 1.0, 2.0]);
        let b = MetricSummary::from_values(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
        assert_eq!(a.p50, 2.0);
    }

    #[test]
    fn empty_and_single() {
        let e = MetricSummary::from_values(&[]);
        assert_eq!(e.count, 0);
        assert!(e.mean.is_nan());
        let s = MetricSummary::from_value(7.5);
        assert_eq!(s.count, 1);
        assert_eq!(
            (s.mean, s.p50, s.p99, s.min, s.max),
            (7.5, 7.5, 7.5, 7.5, 7.5)
        );
    }
}
