//! A minimal hand-rolled TOML-subset parser — the workspace's
//! no-dependency idiom (the CLI's flag parser is hand-rolled the same
//! way). Supported grammar, which is all sweep specs need:
//!
//! ```text
//! # comment
//! [section]            # and [section.sub]
//! key = "string"
//! key = 3.5            # integers, floats, inf
//! key = true
//! key = [1, 2, 3]      # arrays of scalars
//! key = { from = 1, to = 5, steps = 5 }   # inline tables of scalars
//! ```
//!
//! Everything parses into [`Doc`]: ordered sections of key → [`Value`].
//! Unknown keys are *kept* (interpretation happens in `spec`/`sweep`, which
//! report unknown-key errors with the section context).

use std::collections::BTreeMap;

/// A parsed scalar, array, or inline table.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// Any number (integers are represented exactly up to 2^53).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `[v, v, ...]` of scalars.
    Array(Vec<Value>),
    /// `{ k = v, ... }` of scalars.
    Table(BTreeMap<String, Value>),
}

impl Value {
    /// String view (for `Str`).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view (for `Num`).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean view (for `Bool`).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render compactly for labels and error messages.
    pub fn render(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Num(v) => format!("{v}"),
            Value::Bool(b) => format!("{b}"),
            Value::Array(xs) => {
                let inner: Vec<String> = xs.iter().map(Value::render).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Table(t) => {
                let inner: Vec<String> = t
                    .iter()
                    .map(|(k, v)| format!("{k}={}", v.render()))
                    .collect();
                format!("{{{}}}", inner.join(", "))
            }
        }
    }
}

/// One `[section]` worth of keys, in file order.
pub type Section = Vec<(String, Value)>;

/// A parsed spec document: sections (the preamble before any header lives
/// under `""`), each an ordered key/value list.
#[derive(Debug, Clone, Default)]
pub struct Doc {
    sections: Vec<(String, Section)>,
}

impl Doc {
    /// All `(name, section)` pairs in file order.
    pub fn sections(&self) -> &[(String, Section)] {
        &self.sections
    }

    /// Look up a section by name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Look up `section.key`.
    pub fn get(&self, section: &str, key: &str) -> Option<&Value> {
        self.section(section)?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parse errors carry the 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending construct.
    pub line: usize,
    /// What went wrong.
    pub what: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spec parse error at line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, what: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        what: what.into(),
    })
}

/// Strip a trailing `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_scalar(tok: &str, line: usize) -> Result<Value, ParseError> {
    let tok = tok.trim();
    if let Some(rest) = tok.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return err(line, format!("unterminated string {tok:?}"));
        };
        return Ok(Value::Str(inner.to_string()));
    }
    match tok {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        "inf" => return Ok(Value::Num(f64::INFINITY)),
        _ => {}
    }
    // Accept underscore digit separators, as TOML does. f64::parse also
    // accepts "nan"/"infinity" spellings; only the canonical `inf` keyword
    // (handled above) is part of the grammar — NaN and stray infinities
    // would flow silently into filters and metrics.
    let cleaned: String = tok.chars().filter(|&c| c != '_').collect();
    match cleaned.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(Value::Num(v)),
        _ => err(
            line,
            format!("cannot parse value {tok:?} (expected string, finite number, bool, or inf)"),
        ),
    }
}

/// Split `s` on top-level commas (commas inside quotes don't count; the
/// subset forbids nested arrays/tables, so depth tracking is not needed).
fn split_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

fn parse_value(raw: &str, line: usize) -> Result<Value, ParseError> {
    let raw = raw.trim();
    if let Some(inner) = raw.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return err(line, "unterminated array (arrays must fit on one line)");
        };
        let inner = inner.trim();
        if inner.is_empty() {
            return Ok(Value::Array(Vec::new()));
        }
        let items: Result<Vec<Value>, ParseError> = split_commas(inner)
            .iter()
            .map(|t| parse_scalar(t, line))
            .collect();
        return Ok(Value::Array(items?));
    }
    if let Some(inner) = raw.strip_prefix('{') {
        let Some(inner) = inner.strip_suffix('}') else {
            return err(line, "unterminated inline table");
        };
        let mut table = BTreeMap::new();
        for part in split_commas(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some((k, v)) = part.split_once('=') else {
                return err(
                    line,
                    format!("inline table entry {part:?} is not key = value"),
                );
            };
            table.insert(k.trim().to_string(), parse_scalar(v, line)?);
        }
        return Ok(Value::Table(table));
    }
    parse_scalar(raw, line)
}

/// Parse a whole spec document.
pub fn parse(input: &str) -> Result<Doc, ParseError> {
    let mut doc = Doc::default();
    let mut current = String::new();
    doc.sections.push((String::new(), Vec::new()));
    for (i, raw_line) in input.lines().enumerate() {
        let line_no = i + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return err(line_no, format!("malformed section header {line:?}"));
            };
            let name = name.trim();
            if name.is_empty() {
                return err(line_no, "empty section name");
            }
            current = name.to_string();
            if doc.section(name).is_none() {
                doc.sections.push((current.clone(), Vec::new()));
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return err(line_no, format!("expected key = value, found {line:?}"));
        };
        let key = key.trim().to_string();
        if key.is_empty() {
            return err(line_no, "empty key");
        }
        let value = parse_value(value, line_no)?;
        let section = doc
            .sections
            .iter_mut()
            .find(|(n, _)| *n == current)
            .expect("current section always exists");
        if section.1.iter().any(|(k, _)| *k == key) {
            return err(
                line_no,
                format!("duplicate key {key:?} in section [{current}]"),
            );
        }
        section.1.push((key, value));
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_subset() {
        let doc = parse(
            r#"
            # a sweep
            title = "hello world"   # trailing comment
            [sweep]
            name = "grid"
            seed = 20_130_217
            jobs = 2000
            quick = true
            [axes]
            policy = ["formula3", "young"]
            ckpt_cost_scale = { from = 0.25, to = 8, steps = 6 }
            empty = []
            "#,
        )
        .unwrap();
        assert_eq!(doc.get("", "title").unwrap().as_str(), Some("hello world"));
        assert_eq!(
            doc.get("sweep", "seed").unwrap().as_num(),
            Some(20_130_217.0)
        );
        assert_eq!(doc.get("sweep", "quick").unwrap().as_bool(), Some(true));
        let Value::Array(policies) = doc.get("axes", "policy").unwrap() else {
            panic!()
        };
        assert_eq!(policies.len(), 2);
        let Value::Table(t) = doc.get("axes", "ckpt_cost_scale").unwrap() else {
            panic!()
        };
        assert_eq!(t["steps"].as_num(), Some(6.0));
        assert_eq!(doc.get("axes", "empty"), Some(&Value::Array(Vec::new())));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse("name = \"a # b\"").unwrap();
        assert_eq!(doc.get("", "name").unwrap().as_str(), Some("a # b"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("a = 1\nbogus line\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("[sec\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse("x = [1, 2\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse("x = zebra\n").unwrap_err();
        assert!(e.what.contains("zebra"));
    }

    #[test]
    fn duplicate_keys_rejected() {
        let e = parse("[s]\na = 1\na = 2\n").unwrap_err();
        assert!(e.what.contains("duplicate"));
        assert_eq!(e.line, 3);
    }

    #[test]
    fn inf_and_negative_numbers() {
        let doc = parse("limit = inf\nd = -3.5\n").unwrap();
        assert_eq!(doc.get("", "limit").unwrap().as_num(), Some(f64::INFINITY));
        assert_eq!(doc.get("", "d").unwrap().as_num(), Some(-3.5));
    }
}
