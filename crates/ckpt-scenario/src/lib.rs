//! # ckpt-scenario — declarative scenarios and the parallel sweep engine
//!
//! The paper's results (Figures 4–14, Tables 2–7) are parameter sweeps
//! over policy × estimator × checkpoint-cost × failure-model grids. This
//! crate replaces the one-off-binary-per-figure pattern with a declarative
//! subsystem:
//!
//! * [`spec`] — [`ScenarioSpec`]: one run as a value (engine, workload or
//!   trace file, policy/estimator/adaptivity, storage device, cost tweaks,
//!   record filters, seed).
//! * [`parse`] — a minimal hand-rolled TOML-subset parser (the workspace's
//!   no-dependency idiom).
//! * [`sweep`] — [`SweepSpec`]: base scenario × axes (`policy =
//!   ["formula3", "young"]`, `ckpt_cost_scale = { from, to, steps }`),
//!   expanded row-major into a scenario grid.
//! * [`exec`] — the parallel executor: work-stealing over grid cells with
//!   an atomic counter, per-cell RNG streams derived from
//!   `(seed, cell_index)` (thread-count-invariant results), and a
//!   once-per-run-key cache so cells that differ only in aggregation
//!   filters share a single replay.
//! * [`agg`] — streaming per-cell reduction to mean/p50/p99/min/max
//!   summaries.
//! * [`ckpt`] — checkpointed sweeps, the paper's own mechanism applied to
//!   the executor: completed cells persist to an append-only
//!   `ckpt-store` file as workers finish them, and
//!   [`run_sweep_checkpointed`] resumes a killed sweep by loading
//!   persisted cells and replaying only the missing ones — with exports
//!   byte-identical to an uninterrupted run.
//! * [`export`] — the per-cell results as a shared [`ckpt_report::Frame`],
//!   rendered by the workspace's one deterministic CSV/JSON/table writer.
//!
//! Sweeps also run under a shared [`ckpt_report::RunContext`]
//! (seed + scale + threads + sink) via [`run_sweep_ctx`], so a sweep cell
//! and a registered `ckpt-bench` experiment share one execution and
//! export path.
//!
//! ## Example: a policy × checkpoint-cost grid
//!
//! ```
//! use ckpt_scenario::{run_sweep, SweepOptions, SweepSpec};
//!
//! let sweep = SweepSpec::from_str(r#"
//!     [sweep]
//!     name = "policy_x_cost"
//!     engine = "fast"
//!     seed = 7
//!     jobs = 120
//!
//!     [axes]
//!     policy = ["formula3", "young"]
//!     ckpt_cost_scale = { from = 0.5, to = 2.0, steps = 2 }
//! "#).unwrap();
//! assert_eq!(sweep.grid_size(), 4);
//!
//! let result = run_sweep(&sweep, SweepOptions::default()).unwrap();
//! let wpr = result.cells[0].metrics.iter().find(|(n, _)| *n == "wpr").unwrap().1;
//! assert!(wpr.mean > 0.0 && wpr.mean <= 1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agg;
pub mod ckpt;
pub mod exec;
pub mod export;
pub mod parse;
pub mod spec;
pub mod sweep;

pub use agg::MetricSummary;
pub use ckpt::{CheckpointConfig, ResumeReport, CRASH_EXIT_CODE};
pub use exec::{
    run_sweep, run_sweep_checkpointed, run_sweep_ctx, run_sweep_guarded, run_sweep_telemetry,
    CellResult, CellStatus, FaultPolicy, SweepOptions, SweepResult,
};
pub use export::{csv_string, json_string, to_frame, write_outputs};
pub use spec::{EngineKind, SampleFilter, ScenarioSpec, WorkloadTweaks};
pub use sweep::{Axis, SweepError, SweepSpec};
