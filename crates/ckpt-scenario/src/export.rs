//! Sweep exports: a long-format per-cell CSV and a structured JSON
//! summary, both rendered deterministically (shortest-roundtrip float
//! formatting, cells in grid order) so outputs are byte-identical across
//! runs and thread counts.

use crate::agg::MetricSummary;
use crate::exec::SweepResult;
use crate::sweep::SweepSpec;
use std::io::Write as _;
use std::path::{Path, PathBuf};

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "inf".to_string()
        } else {
            "-inf".to_string()
        }
    } else {
        format!("{v}")
    }
}

/// RFC-4180-style quoting for a CSV field: values containing the
/// delimiter, quotes, or newlines (e.g. a `trace_file` path with a comma)
/// are wrapped and escaped instead of silently shifting columns.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render the per-cell CSV: one row per `(cell, metric)` with the axis
/// assignments as leading columns.
pub fn csv_string(spec: &SweepSpec, result: &SweepResult) -> String {
    let mut out = String::new();
    out.push_str("cell");
    for axis in &spec.axes {
        out.push(',');
        out.push_str(&csv_field(&axis.param));
    }
    out.push_str(",metric,count,mean,p50,p99,min,max\n");
    for cell in &result.cells {
        for (metric, s) in &cell.metrics {
            out.push_str(&cell.index.to_string());
            for (_, rendered) in &cell.params {
                out.push(',');
                out.push_str(&csv_field(rendered));
            }
            out.push_str(&format!(
                ",{metric},{},{},{},{},{},{}\n",
                s.count,
                fmt_f64(s.mean),
                fmt_f64(s.p50),
                fmt_f64(s.p99),
                fmt_f64(s.min),
                fmt_f64(s.max),
            ));
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_num(v: f64) -> String {
    // JSON has no NaN/inf; export them as null.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_metric(s: &MetricSummary) -> String {
    format!(
        "{{\"count\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"min\":{},\"max\":{}}}",
        s.count,
        json_num(s.mean),
        json_num(s.p50),
        json_num(s.p99),
        json_num(s.min),
        json_num(s.max),
    )
}

/// Render the JSON summary: sweep identity, axes, and every cell's params
/// and metrics.
pub fn json_string(spec: &SweepSpec, result: &SweepResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"name\": \"{}\",\n", json_escape(&result.name)));
    out.push_str(&format!(
        "  \"engine\": \"{}\",\n",
        spec.base.engine.label()
    ));
    out.push_str(&format!("  \"seed\": {},\n", spec.base.seed));
    out.push_str(&format!("  \"grid_size\": {},\n", spec.grid_size()));
    out.push_str("  \"axes\": [");
    for (i, axis) in spec.axes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let values: Vec<String> = axis
            .values
            .iter()
            .map(|v| format!("\"{}\"", json_escape(&v.render())))
            .collect();
        out.push_str(&format!(
            "{{\"param\": \"{}\", \"values\": [{}]}}",
            json_escape(&axis.param),
            values.join(", ")
        ));
    }
    out.push_str("],\n");
    out.push_str("  \"cells\": [\n");
    for (i, cell) in result.cells.iter().enumerate() {
        let params: Vec<String> = cell
            .params
            .iter()
            .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
            .collect();
        let metrics: Vec<String> = cell
            .metrics
            .iter()
            .map(|(name, s)| format!("\"{name}\": {}", json_metric(s)))
            .collect();
        out.push_str(&format!(
            "    {{\"index\": {}, \"params\": {{{}}}, \"metrics\": {{{}}}}}{}\n",
            cell.index,
            params.join(", "),
            metrics.join(", "),
            if i + 1 < result.cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write `<out_dir>/<name>_cells.csv` and `<out_dir>/<name>_summary.json`;
/// returns both paths.
pub fn write_outputs(
    spec: &SweepSpec,
    result: &SweepResult,
    out_dir: impl AsRef<Path>,
) -> std::io::Result<(PathBuf, PathBuf)> {
    let dir = out_dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let csv_path = dir.join(format!("{}_cells.csv", result.name));
    let json_path = dir.join(format!("{}_summary.json", result.name));
    std::fs::File::create(&csv_path)?.write_all(csv_string(spec, result).as_bytes())?;
    std::fs::File::create(&json_path)?.write_all(json_string(spec, result).as_bytes())?;
    Ok((csv_path, json_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_sweep, SweepOptions};

    const SPEC: &str = r#"
        [sweep]
        name = "export_test"
        engine = "ckpt-cost"

        [axes]
        device = ["ramdisk", "nfs"]
        n_checkpoints = [1, 3]
    "#;

    #[test]
    fn csv_has_axis_columns_and_all_cells() {
        let sweep = SweepSpec::from_str(SPEC).unwrap();
        let result = run_sweep(&sweep, SweepOptions::default()).unwrap();
        let csv = csv_string(&sweep, &result);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "cell,device,n_checkpoints,metric,count,mean,p50,p99,min,max"
        );
        // 4 cells × 2 metrics.
        assert_eq!(csv.lines().count(), 1 + 8);
        assert!(csv.contains("ramdisk"));
        assert!(csv.contains("total_cost_s"));
    }

    #[test]
    fn json_is_structurally_sound() {
        let sweep = SweepSpec::from_str(SPEC).unwrap();
        let result = run_sweep(&sweep, SweepOptions::default()).unwrap();
        let json = json_string(&sweep, &result);
        assert!(json.contains("\"grid_size\": 4"));
        assert!(json.contains("\"engine\": \"ckpt-cost\""));
        assert_eq!(json.matches("\"index\":").count(), 4);
        // Balanced braces/brackets (cheap structural sanity without a
        // JSON dependency).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn csv_fields_with_delimiters_are_quoted() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("runs/a,v2.csv"), "\"runs/a,v2.csv\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn exports_are_thread_invariant() {
        let sweep = SweepSpec::from_str(SPEC).unwrap();
        let a = run_sweep(&sweep, SweepOptions { threads: 1 }).unwrap();
        let b = run_sweep(&sweep, SweepOptions { threads: 4 }).unwrap();
        assert_eq!(csv_string(&sweep, &a), csv_string(&sweep, &b));
        assert_eq!(json_string(&sweep, &a), json_string(&sweep, &b));
    }

    #[test]
    fn files_written_to_out_dir() {
        let sweep = SweepSpec::from_str(SPEC).unwrap();
        let result = run_sweep(&sweep, SweepOptions::default()).unwrap();
        let dir = std::env::temp_dir().join(format!("ckpt_scenario_export_{}", std::process::id()));
        let (csv, json) = write_outputs(&sweep, &result, &dir).unwrap();
        assert!(csv.ends_with("export_test_cells.csv"));
        assert_eq!(
            std::fs::read_to_string(&csv).unwrap(),
            csv_string(&sweep, &result)
        );
        assert!(std::fs::read_to_string(&json)
            .unwrap()
            .contains("\"cells\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
