//! Sweep exports, rebuilt on the workspace's shared output frame: the
//! per-cell long-format table becomes a [`ckpt_report::Frame`] and every
//! rendering (CSV file, JSON summary, stdout table) goes through the one
//! deterministic writer in `ckpt-report` — so a sweep cell and a
//! standalone experiment share a single export path, byte-identical
//! across runs and thread counts.

use crate::exec::{CellStatus, SweepResult};
use crate::sweep::SweepSpec;
use ckpt_report::{Frame, Value};
use std::path::{Path, PathBuf};

/// A quarantine reason as a single CSV-safe cell: commas, quotes, and
/// newlines (which would break the line-oriented CSV writer) collapse to
/// spaces/semicolons.
fn sanitize_reason(reason: &str) -> String {
    reason
        .chars()
        .map(|c| match c {
            ',' => ';',
            '"' => '\'',
            '\n' | '\r' => ' ',
            c => c,
        })
        .collect()
}

/// Build the long-format cells frame: one row per `(cell, metric)` with
/// the axis assignments as leading columns, plus sweep identity metadata
/// (engine, seed, grid size, axes).
///
/// A degraded run (at least one quarantined cell) appends a `status`
/// column — `ok` for healthy rows, `failed: <reason>` for quarantined
/// ones. A fully healthy run emits exactly the historical columns, so
/// fault tolerance never perturbs clean-run bytes.
pub fn to_frame(spec: &SweepSpec, result: &SweepResult) -> Frame {
    let degraded = result.cells.iter().any(|c| !c.status.is_ok());
    let mut columns: Vec<String> = vec!["cell".to_string()];
    columns.extend(spec.axes.iter().map(|a| a.param.clone()));
    for metric_col in ["metric", "count", "mean", "p50", "p99", "min", "max"] {
        columns.push(metric_col.to_string());
    }
    if degraded {
        columns.push("status".to_string());
    }
    let axes: Vec<String> = spec
        .axes
        .iter()
        .map(|a| format!("{}({})", a.param, a.values.len()))
        .collect();
    let mut frame = Frame::new(&format!("{}_cells", result.name), columns)
        .with_title(format!("sweep {}", result.name))
        .with_meta("engine", spec.base.engine.label())
        // The seed the run actually used (a RunContext may have
        // overridden the spec's), so the metadata is reproducible.
        .with_meta("seed", result.seed.to_string())
        .with_meta("grid_size", spec.grid_size().to_string())
        .with_meta("axes", axes.join(" x "));
    for cell in &result.cells {
        for (metric, s) in &cell.metrics {
            let mut row: Vec<Value> = vec![Value::from(cell.index)];
            row.extend(
                cell.params
                    .iter()
                    .map(|(_, rendered)| Value::from(rendered.clone())),
            );
            row.push(Value::from(*metric));
            row.push(Value::from(s.count));
            for v in [s.mean, s.p50, s.p99, s.min, s.max] {
                row.push(Value::Num(v));
            }
            if degraded {
                row.push(Value::from(match &cell.status {
                    CellStatus::Ok => "ok".to_string(),
                    CellStatus::Failed { reason } => {
                        format!("failed: {}", sanitize_reason(reason))
                    }
                }));
            }
            frame.push_row(row);
        }
    }
    frame
}

/// Render the per-cell CSV (the cells frame as CSV).
pub fn csv_string(spec: &SweepSpec, result: &SweepResult) -> String {
    to_frame(spec, result).to_csv()
}

/// Render the JSON summary (the cells frame as a self-describing JSON
/// document).
pub fn json_string(spec: &SweepSpec, result: &SweepResult) -> String {
    to_frame(spec, result).to_json()
}

/// Write `<out_dir>/<name>_cells.csv` and `<out_dir>/<name>_summary.json`;
/// returns both paths.
pub fn write_outputs(
    spec: &SweepSpec,
    result: &SweepResult,
    out_dir: impl AsRef<Path>,
) -> std::io::Result<(PathBuf, PathBuf)> {
    let dir = out_dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let csv_path = dir.join(format!("{}_cells.csv", result.name));
    let json_path = dir.join(format!("{}_summary.json", result.name));
    std::fs::write(&csv_path, csv_string(spec, result))?;
    std::fs::write(&json_path, json_string(spec, result))?;
    Ok((csv_path, json_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_sweep, SweepOptions};

    const SPEC: &str = r#"
        [sweep]
        name = "export_test"
        engine = "ckpt-cost"

        [axes]
        device = ["ramdisk", "nfs"]
        n_checkpoints = [1, 3]
    "#;

    #[test]
    fn csv_has_axis_columns_and_all_cells() {
        let sweep = SweepSpec::from_str(SPEC).unwrap();
        let result = run_sweep(&sweep, SweepOptions::default()).unwrap();
        let csv = csv_string(&sweep, &result);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "cell,device,n_checkpoints,metric,count,mean,p50,p99,min,max"
        );
        // 4 cells × 2 metrics.
        assert_eq!(csv.lines().count(), 1 + 8);
        assert!(csv.contains("ramdisk"));
        assert!(csv.contains("total_cost_s"));
    }

    #[test]
    fn json_is_the_shared_frame_document() {
        let sweep = SweepSpec::from_str(SPEC).unwrap();
        let result = run_sweep(&sweep, SweepOptions::default()).unwrap();
        let json = json_string(&sweep, &result);
        assert!(json.contains("\"name\": \"export_test_cells\""));
        assert!(json.contains("\"engine\": \"ckpt-cost\""));
        assert!(json.contains("\"grid_size\": \"4\""));
        assert!(json.contains("\"axes\": \"device(2) x n_checkpoints(2)\""));
        // 4 cells × 2 metrics = 8 data rows.
        let frame = to_frame(&sweep, &result);
        assert_eq!(frame.rows.len(), 8);
        // Balanced braces/brackets (cheap structural sanity without a
        // JSON dependency).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn exports_are_thread_invariant() {
        let sweep = SweepSpec::from_str(SPEC).unwrap();
        let a = run_sweep(&sweep, SweepOptions { threads: 1 }).unwrap();
        let b = run_sweep(&sweep, SweepOptions { threads: 4 }).unwrap();
        assert_eq!(csv_string(&sweep, &a), csv_string(&sweep, &b));
        assert_eq!(json_string(&sweep, &a), json_string(&sweep, &b));
    }

    #[test]
    fn status_column_appears_only_on_degraded_runs() {
        let sweep = SweepSpec::from_str(SPEC).unwrap();
        let mut result = run_sweep(&sweep, SweepOptions::default()).unwrap();
        let clean_header = "cell,device,n_checkpoints,metric,count,mean,p50,p99,min,max";
        assert_eq!(
            csv_string(&sweep, &result).lines().next().unwrap(),
            clean_header
        );

        // Quarantine one cell by hand: the column appears, healthy rows
        // say "ok", and the failed cell exports exactly one NaN row with
        // a CSV-safe reason.
        let params = result.cells[2].params.clone();
        result.cells[2] = crate::exec::CellResult {
            index: 2,
            params,
            metrics: vec![("failed", crate::agg::MetricSummary::from_values(&[]))],
            status: CellStatus::Failed {
                reason: "panicked: injected, with\nnewline".into(),
            },
        };
        let csv = csv_string(&sweep, &result);
        assert_eq!(
            csv.lines().next().unwrap(),
            "cell,device,n_checkpoints,metric,count,mean,p50,p99,min,max,status"
        );
        let failed: Vec<&str> = csv.lines().filter(|l| l.contains("failed")).collect();
        assert_eq!(failed.len(), 1, "one metric row per quarantined cell");
        assert!(
            failed[0]
                .ends_with("failed,0,NaN,NaN,NaN,NaN,NaN,failed: panicked: injected; with newline"),
            "unexpected failed row: {}",
            failed[0]
        );
        // Every other data row carries the ok marker.
        assert_eq!(
            csv.lines().skip(1).filter(|l| l.ends_with(",ok")).count(),
            6
        );
        // JSON mirrors the same gating: NaN metrics render as null.
        let json = json_string(&sweep, &result);
        assert!(json.contains("failed: panicked: injected; with newline"));
        assert!(json.contains("null"));
    }

    #[test]
    fn files_written_to_out_dir() {
        let sweep = SweepSpec::from_str(SPEC).unwrap();
        let result = run_sweep(&sweep, SweepOptions::default()).unwrap();
        let dir = std::env::temp_dir().join(format!("ckpt_scenario_export_{}", std::process::id()));
        let (csv, json) = write_outputs(&sweep, &result, &dir).unwrap();
        assert!(csv.ends_with("export_test_cells.csv"));
        assert_eq!(
            std::fs::read_to_string(&csv).unwrap(),
            csv_string(&sweep, &result)
        );
        assert!(std::fs::read_to_string(&json).unwrap().contains("\"rows\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
