//! [`ScenarioSpec`] — the declarative description of **one** run: which
//! engine, which workload (generated or replayed from a trace file), which
//! policy/estimator/adaptivity/storage configuration, which cost tweaks,
//! and which record filters feed the aggregation.
//!
//! A scenario is a *value*: the sweep layer clones the base scenario and
//! applies axis assignments via [`ScenarioSpec::apply`], so every grid cell
//! is itself a complete, self-describing `ScenarioSpec`.

use crate::parse::Value;
use ckpt_policy::PolicyKind;
use ckpt_sim::blcr::Device;
use ckpt_sim::cluster::ClusterConfig;
use ckpt_sim::policy::{CostTweak, EstimatorKind, PolicyConfig, StorageChoice};
use ckpt_trace::failure::{FailureKind, FailureModelSpec};
use ckpt_trace::gen::JobStructure;
use ckpt_trace::spec::WorkloadSpec;

/// Which execution engine evaluates a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The fast per-task replay path (`ckpt_sim::runner`).
    Fast,
    /// The full-cluster DES (`ckpt_sim::cluster`): scheduling, storage
    /// contention, restart migration.
    Cluster,
    /// Analytic BLCR checkpoint-cost evaluation (Figure 7 style): no
    /// simulation, just the calibrated cost model.
    CkptCost,
    /// Simultaneous-checkpoint contention microbenchmark on a
    /// processor-sharing storage server (Table 2/3 style).
    Contention,
}

impl EngineKind {
    /// Short label for reports and exports.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Fast => "fast",
            EngineKind::Cluster => "cluster",
            EngineKind::CkptCost => "ckpt-cost",
            EngineKind::Contention => "contention",
        }
    }

    /// Parse from a spec string. (Inherent rather than `std::str::FromStr`
    /// so call sites read as spec vocabulary, like the CLI's parsers.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "fast" => Ok(EngineKind::Fast),
            "cluster" => Ok(EngineKind::Cluster),
            "ckpt-cost" => Ok(EngineKind::CkptCost),
            "contention" => Ok(EngineKind::Contention),
            other => Err(format!(
                "unknown engine {other:?} (expected fast|cluster|ckpt-cost|contention)"
            )),
        }
    }
}

/// How a trace-engine cell aggregates its replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsChoice {
    /// Materialize per-job records (full order statistics: p50/p99; all
    /// aggregation filters available). The default.
    #[default]
    Full,
    /// Fold records into constant-memory streaming summaries as the
    /// replay produces them (replay engines — fast and cluster;
    /// `sample = "all"` and no record filters). Exports exact
    /// count/mean/min/max plus p50/p99 from a deterministic mergeable
    /// quantile sketch ([`ckpt_stats::sketch`]): exact in rank, within
    /// the sketch's documented ≈ 1 % relative value error of the
    /// full-record percentiles, and byte-identical at any thread count.
    /// For stress-scale sweeps where the per-cell record vector is the
    /// dominant allocation.
    Streaming,
}

impl MetricsChoice {
    /// Spec label.
    pub fn label(&self) -> &'static str {
        match self {
            MetricsChoice::Full => "full",
            MetricsChoice::Streaming => "streaming",
        }
    }
}

/// Which jobs feed the aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleFilter {
    /// Every job in the trace.
    All,
    /// The paper's sample: jobs where at least `fraction` of tasks failed.
    FailureProne {
        /// Minimum failed-task fraction for a job to qualify.
        fraction: f64,
    },
}

/// Workload-shape overrides applied on top of
/// [`WorkloadSpec::google_like`]. `None` keeps the calibrated default.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkloadTweaks {
    /// Median task length (seconds).
    pub length_median_s: Option<f64>,
    /// Multiplicative task-length spread.
    pub length_spread: Option<f64>,
    /// Bag-of-tasks job fraction.
    pub bot_fraction: Option<f64>,
    /// Long-running-service job fraction.
    pub long_task_fraction: Option<f64>,
    /// Mean job inter-arrival time (seconds).
    pub mean_interarrival_s: Option<f64>,
    /// Median task memory (MB).
    pub mem_median_mb: Option<f64>,
    /// Give every job a mid-run priority flip (the Figure 14 scenario).
    pub flips: bool,
}

/// The declarative description of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (used in output paths and labels).
    pub name: String,
    /// Execution engine.
    pub engine: EngineKind,
    /// Base RNG seed — trace generation and failure streams derive from it.
    pub seed: u64,
    /// Number of jobs to generate (ignored when `trace_file` is set).
    pub jobs: usize,
    /// Replay this exported trace CSV instead of generating a workload.
    pub trace_file: Option<String>,
    /// Workload-shape overrides.
    pub workload: WorkloadTweaks,

    /// Which inter-failure law the workload's kill plans (and the cluster
    /// engine's host failures) are drawn from. The default `exponential`
    /// is the bit-identical legacy path; see [`ckpt_trace::failure`].
    pub failure_model: FailureKind,
    /// Shape parameter of the failure model (`None` = the kind's default:
    /// Weibull 0.7, log-normal σ 1.0, Pareto 1.5).
    pub failure_shape: Option<f64>,
    /// Mean-interval multiplier of the failure model (> 1 ⇒ fewer
    /// failures than the MNOF calibration).
    pub failure_scale: f64,

    /// Checkpoint-placement policy.
    pub policy: PolicyKind,
    /// MNOF/MTBF estimator.
    pub estimator: EstimatorKind,
    /// Algorithm 1 adaptivity.
    pub adaptive: bool,
    /// Checkpoint storage selection.
    pub storage: StorageChoice,
    /// Checkpoint/restart cost adjustments.
    pub cost: CostTweak,

    /// How trace-engine cells aggregate their replay (full records vs
    /// streaming summaries).
    pub metrics: MetricsChoice,
    /// Which jobs feed the aggregation.
    pub sample: SampleFilter,
    /// Restrict aggregation to one job structure.
    pub structure: Option<JobStructure>,
    /// Restrict aggregation to one priority.
    pub priority: Option<u8>,
    /// Restrict aggregation to jobs whose longest task is ≤ this (the
    /// paper's RL parameter).
    pub max_task_length: Option<f64>,

    /// Cluster engine topology/storage parameters.
    pub cluster: ClusterConfig,
    /// Cluster engine host-group shards: 1 (the default) takes the exact
    /// legacy single-engine path; `S > 1` partitions the host fleet into
    /// `S` contiguous groups and runs one engine per shard in parallel
    /// (`ckpt_sim::shard`). Must not exceed `n_hosts` — validated at
    /// execution time, when both final values are known.
    pub shards: usize,

    /// `ckpt-cost` / `contention` engines: checkpoint device.
    pub device: Device,
    /// `ckpt-cost` / `contention` engines: task memory (MB).
    pub mem_mb: f64,
    /// `ckpt-cost` engine: number of checkpoints.
    pub n_checkpoints: u32,
    /// `contention` engine: simultaneous checkpoint degree X.
    pub degree: usize,
    /// `contention` engine: measurement repetitions.
    pub reps: usize,
}

impl ScenarioSpec {
    /// A paper-default scenario: fast engine, Formula (3), per-priority
    /// estimation, failure-prone sample — the configuration behind the
    /// headline figures.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            engine: EngineKind::Fast,
            seed: 20130217,
            jobs: 2000,
            trace_file: None,
            workload: WorkloadTweaks::default(),
            failure_model: FailureKind::Exponential,
            failure_shape: None,
            failure_scale: 1.0,
            policy: PolicyKind::Formula3,
            estimator: EstimatorKind::PerPriority {
                limit: f64::INFINITY,
            },
            adaptive: false,
            storage: StorageChoice::Auto,
            cost: CostTweak::identity(),
            metrics: MetricsChoice::Full,
            sample: SampleFilter::FailureProne { fraction: 0.5 },
            structure: None,
            priority: None,
            max_task_length: None,
            cluster: ClusterConfig::default(),
            shards: 1,
            device: Device::Ramdisk,
            mem_mb: 160.0,
            n_checkpoints: 1,
            degree: 1,
            reps: 25,
        }
    }

    /// The validated failure model this scenario runs under. Errors name
    /// the offending spec field (`failure_shape` / `failure_scale`) —
    /// combinations that only meet across sweep axes surface here.
    pub fn failure_spec(&self) -> Result<FailureModelSpec, String> {
        self.failure_model
            .build(self.failure_shape, self.failure_scale)
    }

    /// The workload spec this scenario generates (when no trace file).
    /// Fails when the failure-model fields form an invalid combination
    /// (e.g. a `failure_shape` axis meeting the exponential model).
    pub fn workload_spec(&self) -> Result<WorkloadSpec, String> {
        let mut w = WorkloadSpec::google_like(self.jobs);
        let t = &self.workload;
        if let Some(v) = t.length_median_s {
            w.length_median_s = v;
        }
        if let Some(v) = t.length_spread {
            w.length_spread = v;
        }
        if let Some(v) = t.bot_fraction {
            w.bot_fraction = v;
        }
        if let Some(v) = t.long_task_fraction {
            w.long_task_fraction = v;
        }
        if let Some(v) = t.mean_interarrival_s {
            w.mean_interarrival_s = v;
        }
        if let Some(v) = t.mem_median_mb {
            w.mem_median_mb = v;
        }
        if t.flips {
            w = w.with_priority_flips();
        }
        w.failure_model = self.failure_spec()?;
        Ok(w)
    }

    /// The policy configuration this scenario runs.
    pub fn policy_config(&self) -> PolicyConfig {
        let base = match self.policy {
            PolicyKind::Formula3 => PolicyConfig::formula3(),
            PolicyKind::Young => PolicyConfig::young(),
            PolicyKind::Daly => PolicyConfig::daly(),
            PolicyKind::None => PolicyConfig::none(),
        };
        base.with_estimator(self.estimator)
            .with_adaptivity(self.adaptive)
            .with_storage(self.storage)
            .with_cost(self.cost)
    }

    /// A key identifying everything that affects the *simulation*: cells
    /// sharing a run key share one replay. The aggregation filters
    /// (`sample`, `structure`, `priority`, `max_task_length`) deliberately
    /// do not enter the key.
    pub fn run_key(&self) -> String {
        format!(
            "{:?}|{}|{}|{:?}|{:?}|{:?}|{:?}|{}|{:?}|{:?}|{}|{:?}|{:?}|{:?}|{}|{:?}|{}|{}|{}|{}|{:?}",
            self.engine,
            self.seed,
            self.jobs,
            self.trace_file,
            self.workload,
            self.failure_model,
            self.failure_shape,
            self.failure_scale,
            self.policy,
            self.estimator,
            self.adaptive,
            self.storage,
            self.cost,
            self.cluster,
            // Sharding changes the simulation (shard-local scheduling and
            // per-shard RNG streams), so it is replay identity.
            self.shards,
            self.device,
            self.mem_mb,
            self.n_checkpoints,
            self.degree,
            self.reps,
            // Streaming cells produce stream-shaped run data, so the
            // aggregation mode is part of the replay identity (unlike the
            // record filters, which never enter the key).
            self.metrics,
        )
    }

    /// Apply one `key = value` assignment (used for both base-scenario
    /// fields and sweep-axis values).
    pub fn apply(&mut self, key: &str, value: &Value) -> Result<(), String> {
        let num = |v: &Value| {
            v.as_num()
                .ok_or_else(|| format!("key {key:?}: expected a number, got {}", v.render()))
        };
        fn text_of<'v>(key: &str, v: &'v Value) -> Result<&'v str, String> {
            v.as_str()
                .ok_or_else(|| format!("key {key:?}: expected a string, got {}", v.render()))
        }
        let boolean = |v: &Value| {
            v.as_bool()
                .ok_or_else(|| format!("key {key:?}: expected a bool, got {}", v.render()))
        };
        // Cost and size inputs feed `DeviceCosts::new`, which rejects
        // non-positive values with a panic deep in plan_task; validate here
        // so bad specs fail with a named key instead of killing the sweep.
        let positive = |v: &Value| -> Result<f64, String> {
            let x = num(v)?;
            if x > 0.0 {
                Ok(x)
            } else {
                Err(format!("key {key:?}: must be positive, got {x}"))
            }
        };
        // Count-like inputs: a bare `as usize` would saturate `jobs = -100`
        // to zero and truncate `2.7` to 2, silently producing a degenerate
        // sweep; require an exact non-negative integer.
        let count = |v: &Value| -> Result<u64, String> {
            let x = num(v)?;
            if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 {
                Ok(x as u64)
            } else {
                Err(format!(
                    "key {key:?}: expected a non-negative integer, got {x}"
                ))
            }
        };
        match key {
            "engine" => self.engine = EngineKind::from_str(text_of(key, value)?)?,
            "seed" => self.seed = count(value)?,
            "jobs" => self.jobs = count(value)? as usize,
            "trace" | "trace_file" => self.trace_file = Some(text_of(key, value)?.to_string()),

            "policy" => {
                self.policy = match text_of(key, value)? {
                    "formula3" => PolicyKind::Formula3,
                    "young" => PolicyKind::Young,
                    "daly" => PolicyKind::Daly,
                    "none" => PolicyKind::None,
                    other => {
                        return Err(format!(
                            "unknown policy {other:?} (expected formula3|young|daly|none)"
                        ))
                    }
                }
            }
            "estimator" => {
                let limit = self.estimator_limit();
                self.estimator = match text_of(key, value)? {
                    "oracle" => EstimatorKind::Oracle,
                    "priority" => EstimatorKind::PerPriority { limit },
                    "global" => EstimatorKind::Global { limit },
                    other => {
                        return Err(format!(
                            "unknown estimator {other:?} (expected oracle|priority|global)"
                        ))
                    }
                }
            }
            "limit" => {
                let limit = num(value)?;
                // A non-positive or NaN length cutoff would silently empty
                // the estimation population (every group falls back to the
                // pooled rate); reject it by name. `inf` stays valid — it
                // is the paper's unrestricted-length configuration.
                if limit.is_nan() || limit <= 0.0 {
                    return Err(format!(
                        "key \"limit\": must be positive (or inf), got {limit}"
                    ));
                }
                self.estimator = match self.estimator {
                    // Silently keeping Oracle would make a `limit` axis a
                    // no-op grid of identical cells.
                    EstimatorKind::Oracle => {
                        return Err("key \"limit\" has no effect with the oracle estimator; \
                             set estimator = \"priority\" or \"global\" first"
                            .to_string())
                    }
                    EstimatorKind::PerPriority { .. } => EstimatorKind::PerPriority { limit },
                    EstimatorKind::Global { .. } => EstimatorKind::Global { limit },
                };
            }
            "adaptive" => self.adaptive = boolean(value)?,
            "storage" => {
                self.storage = match text_of(key, value)? {
                    "auto" => StorageChoice::Auto,
                    other => StorageChoice::Force(parse_device(other)?),
                }
            }
            "ckpt_cost_scale" => self.cost.ckpt_scale = positive(value)?,
            "restart_cost_scale" => self.cost.restart_scale = positive(value)?,
            "ckpt_cost" => self.cost.ckpt_override = Some(positive(value)?),
            "restart_cost" => self.cost.restart_override = Some(positive(value)?),

            "metrics" => {
                self.metrics = match text_of(key, value)? {
                    "full" => MetricsChoice::Full,
                    "streaming" => MetricsChoice::Streaming,
                    other => {
                        return Err(format!(
                            "unknown metrics mode {other:?} (expected full|streaming)"
                        ))
                    }
                }
            }
            "sample" => {
                self.sample = match text_of(key, value)? {
                    "all" => SampleFilter::All,
                    "failure-prone" => SampleFilter::FailureProne { fraction: 0.5 },
                    other => {
                        return Err(format!(
                            "unknown sample {other:?} (expected all|failure-prone)"
                        ))
                    }
                }
            }
            "sample_fraction" => {
                let fraction = num(value)?;
                if !(fraction > 0.0 && fraction <= 1.0) {
                    return Err(format!(
                        "key \"sample_fraction\": must be in (0, 1], got {fraction}"
                    ));
                }
                self.sample = SampleFilter::FailureProne { fraction }
            }
            "structure" => {
                self.structure = match text_of(key, value)? {
                    "ST" => Some(JobStructure::Sequential),
                    "BoT" => Some(JobStructure::BagOfTasks),
                    "any" => None,
                    other => return Err(format!("unknown structure {other:?} (ST|BoT|any)")),
                }
            }
            "priority" => {
                let p = count(value)?;
                if !(1..=12).contains(&p) {
                    return Err(format!("key \"priority\": must be in 1..=12, got {p}"));
                }
                self.priority = Some(p as u8);
            }
            "max_task_length" => self.max_task_length = Some(num(value)?),

            // The three failure keys validate the *combination* before
            // committing, so a bad pairing (e.g. a failure_shape axis over
            // an exponential base) fails at parse time with the spec left
            // untouched, not mid-sweep with half-applied state.
            "failure_model" => {
                let kind = FailureKind::from_name(text_of(key, value)?)?;
                kind.build(self.failure_shape, self.failure_scale)?;
                self.failure_model = kind;
            }
            "failure_shape" => {
                let shape = num(value)?;
                self.failure_model.build(Some(shape), self.failure_scale)?;
                self.failure_shape = Some(shape);
            }
            "failure_scale" => {
                let scale = num(value)?;
                self.failure_model.build(self.failure_shape, scale)?;
                self.failure_scale = scale;
            }

            "length_median_s" => self.workload.length_median_s = Some(num(value)?),
            "length_spread" => self.workload.length_spread = Some(num(value)?),
            "bot_fraction" => self.workload.bot_fraction = Some(num(value)?),
            "long_task_fraction" => self.workload.long_task_fraction = Some(num(value)?),
            "mean_interarrival_s" => self.workload.mean_interarrival_s = Some(num(value)?),
            "mem_median_mb" => self.workload.mem_median_mb = Some(num(value)?),
            "flips" => self.workload.flips = boolean(value)?,

            "n_hosts" => self.cluster.n_hosts = count(value)? as usize,
            "vms_per_host" => self.cluster.vms_per_host = count(value)? as usize,
            "host_mem_mb" => self.cluster.host_mem_mb = num(value)?,
            // A zero/negative storage rate or host MTBF would hang the DES
            // (zero-length service / failure intervals rescheduled at the
            // same instant forever); reject at spec time by name.
            "storage_rate" => self.cluster.storage_rate = positive(value)?,
            "host_mtbf_s" => self.cluster.host_mtbf_s = Some(positive(value)?),
            // Zero shards has no meaning (who owns the hosts?); the upper
            // bound (shards <= n_hosts) is checked at execution time,
            // where the final n_hosts is known even when the two values
            // arrive via different sweep axes.
            "shards" => {
                let n = count(value)? as usize;
                if n == 0 {
                    return Err(format!("key {key:?}: must be >= 1, got 0"));
                }
                self.shards = n;
            }

            "device" => self.device = parse_device(text_of(key, value)?)?,
            "mem_mb" => self.mem_mb = positive(value)?,
            "n_checkpoints" => self.n_checkpoints = count(value)? as u32,
            "degree" => self.degree = count(value)? as usize,
            "reps" => self.reps = count(value)? as usize,

            other => return Err(format!("unknown scenario key {other:?}")),
        }
        Ok(())
    }

    fn estimator_limit(&self) -> f64 {
        match self.estimator {
            EstimatorKind::Oracle => f64::INFINITY,
            EstimatorKind::PerPriority { limit } | EstimatorKind::Global { limit } => limit,
        }
    }
}

fn parse_device(s: &str) -> Result<Device, String> {
    match s {
        "ramdisk" => Ok(Device::Ramdisk),
        "nfs" => Ok(Device::CentralNfs),
        "dmnfs" | "dm-nfs" => Ok(Device::DmNfs),
        other => Err(format!(
            "unknown device {other:?} (expected ramdisk|nfs|dmnfs)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_primary_config() {
        let s = ScenarioSpec::new("t");
        let cfg = s.policy_config();
        assert_eq!(cfg.kind, PolicyKind::Formula3);
        assert!(!cfg.adaptive);
        assert_eq!(cfg.storage, StorageChoice::Auto);
        assert_eq!(s.workload_spec().unwrap().n_jobs, 2000);
    }

    #[test]
    fn apply_sets_policy_and_cost() {
        let mut s = ScenarioSpec::new("t");
        s.apply("policy", &Value::Str("young".into())).unwrap();
        s.apply("ckpt_cost_scale", &Value::Num(4.0)).unwrap();
        s.apply("adaptive", &Value::Bool(true)).unwrap();
        assert_eq!(s.policy, PolicyKind::Young);
        assert_eq!(s.cost.ckpt_scale, 4.0);
        let cfg = s.policy_config();
        assert_eq!(cfg.kind, PolicyKind::Young);
        assert!(cfg.adaptive);
        assert_eq!(cfg.cost.ckpt_scale, 4.0);
    }

    #[test]
    fn estimator_and_limit_compose_in_either_order() {
        let mut a = ScenarioSpec::new("a");
        a.apply("estimator", &Value::Str("global".into())).unwrap();
        a.apply("limit", &Value::Num(1000.0)).unwrap();
        let mut b = ScenarioSpec::new("b");
        b.apply("limit", &Value::Num(1000.0)).unwrap();
        b.apply("estimator", &Value::Str("global".into())).unwrap();
        assert_eq!(a.estimator, EstimatorKind::Global { limit: 1000.0 });
        assert_eq!(a.estimator, b.estimator);
    }

    #[test]
    fn filters_do_not_change_the_run_key() {
        let mut a = ScenarioSpec::new("x");
        let base_key = a.run_key();
        a.apply("structure", &Value::Str("BoT".into())).unwrap();
        a.apply("priority", &Value::Num(2.0)).unwrap();
        a.apply("max_task_length", &Value::Num(1000.0)).unwrap();
        assert_eq!(a.run_key(), base_key);
        a.apply("policy", &Value::Str("daly".into())).unwrap();
        assert_ne!(a.run_key(), base_key);
    }

    #[test]
    fn workload_tweaks_apply() {
        let mut s = ScenarioSpec::new("w");
        s.apply("length_median_s", &Value::Num(100.0)).unwrap();
        s.apply("flips", &Value::Bool(true)).unwrap();
        let w = s.workload_spec().unwrap();
        assert_eq!(w.length_median_s, 100.0);
        assert_eq!(w.priority_flip_prob, 1.0);
    }

    #[test]
    fn limit_rejects_nonpositive_and_nan_by_name() {
        let mut s = ScenarioSpec::new("l");
        for bad in [0.0, -100.0, f64::NAN] {
            let e = s.apply("limit", &Value::Num(bad)).unwrap_err();
            assert!(e.contains("\"limit\""), "{e}");
        }
        // inf stays valid: the paper's unrestricted-length configuration.
        assert!(s.apply("limit", &Value::Num(f64::INFINITY)).is_ok());
        assert_eq!(
            s.estimator,
            EstimatorKind::PerPriority {
                limit: f64::INFINITY
            }
        );
    }

    #[test]
    fn failure_model_axis_applies_and_validates() {
        let mut s = ScenarioSpec::new("f");
        s.apply("failure_model", &Value::Str("weibull".into()))
            .unwrap();
        s.apply("failure_shape", &Value::Num(0.5)).unwrap();
        s.apply("failure_scale", &Value::Num(2.0)).unwrap();
        assert_eq!(
            s.failure_spec().unwrap(),
            FailureModelSpec::Weibull {
                shape: 0.5,
                scale: 2.0
            }
        );
        let w = s.workload_spec().unwrap();
        assert_eq!(
            w.failure_model,
            FailureModelSpec::Weibull {
                shape: 0.5,
                scale: 2.0
            }
        );

        // Bad values are rejected at apply time with named fields.
        let mut bad = ScenarioSpec::new("b");
        let e = bad
            .apply("failure_model", &Value::Str("gamma".into()))
            .unwrap_err();
        assert!(e.contains("failure model"), "{e}");
        // Shape on the exponential default is a no-op grid in disguise.
        let e = bad.apply("failure_shape", &Value::Num(0.7)).unwrap_err();
        assert!(e.contains("exponential"), "{e}");
        bad.apply("failure_model", &Value::Str("pareto".into()))
            .unwrap();
        let e = bad.apply("failure_shape", &Value::Num(0.9)).unwrap_err();
        assert!(e.contains("shape > 1"), "{e}");
        let e = bad
            .apply("failure_scale", &Value::Num(f64::NAN))
            .unwrap_err();
        assert!(e.contains("failure_scale"), "{e}");
    }

    #[test]
    fn failure_model_enters_the_run_key() {
        let mut a = ScenarioSpec::new("x");
        let base_key = a.run_key();
        a.apply("failure_model", &Value::Str("pareto".into()))
            .unwrap();
        assert_ne!(a.run_key(), base_key);
        let with_default_shape = a.run_key();
        a.apply("failure_shape", &Value::Num(1.8)).unwrap();
        assert_ne!(a.run_key(), with_default_shape);
    }

    #[test]
    fn host_mtbf_and_storage_rate_must_be_positive() {
        let mut s = ScenarioSpec::new("c");
        assert!(s.apply("host_mtbf_s", &Value::Num(0.0)).is_err());
        assert!(s.apply("storage_rate", &Value::Num(-1.0)).is_err());
        assert!(s.apply("host_mtbf_s", &Value::Num(3600.0)).is_ok());
    }

    #[test]
    fn shards_key_validates_and_enters_the_run_key() {
        let mut s = ScenarioSpec::new("c");
        assert_eq!(s.shards, 1);
        assert!(s.apply("shards", &Value::Num(0.0)).is_err());
        assert!(s.apply("shards", &Value::Num(2.5)).is_err());
        assert!(s.apply("shards", &Value::Str("four".into())).is_err());
        let unsharded_key = s.run_key();
        s.apply("shards", &Value::Num(4.0)).unwrap();
        assert_eq!(s.shards, 4);
        // Sharding changes the simulation, so cells with different shard
        // counts must never share a replay.
        assert_ne!(s.run_key(), unsharded_key);
    }

    #[test]
    fn unknown_keys_and_bad_values_error() {
        let mut s = ScenarioSpec::new("e");
        assert!(s.apply("zebra", &Value::Num(1.0)).is_err());
        assert!(s.apply("policy", &Value::Num(3.0)).is_err());
        assert!(s.apply("policy", &Value::Str("zebra".into())).is_err());
        assert!(s.apply("device", &Value::Str("floppy".into())).is_err());
        assert!(s.apply("engine", &Value::Str("warp".into())).is_err());
    }
}
