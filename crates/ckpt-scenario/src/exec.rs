//! The parallel sweep executor.
//!
//! Worker threads pull cell indices from an atomic counter (the
//! [`ckpt_sim::runner::parallel_indexed`] work-stealing substrate, shared
//! with trace replay). Determinism guarantees:
//!
//! * every cell's extra randomness (contention jitter, cluster tie-breaks)
//!   comes from an RNG stream derived from `(cell seed, cell index)`, never
//!   from a shared generator — so results are invariant to thread count and
//!   completion order;
//! * cells that share a *run key* (identical simulation inputs, differing
//!   only in aggregation filters) share one replay through a once-per-key
//!   cache, computed by whichever worker gets there first and reused by the
//!   rest. A second cache level shares trace preparation (generation,
//!   failure histories, estimator state) across run keys that differ only
//!   in policy/cost configuration — the common shape of a policy sweep.

use crate::agg::MetricSummary;
use crate::ckpt::{self, CheckpointConfig, ResumeReport};
use crate::spec::{EngineKind, MetricsChoice, SampleFilter, ScenarioSpec};
use crate::sweep::{SweepError, SweepSpec};
use ckpt_faults::{io_kind_name, is_transient_kind, CellFault, FaultState, RunHealth, WriteFault};
use ckpt_obs::{Counter, Counters, Phase, Telemetry};
use ckpt_sim::blcr::{BlcrModel, Device};
use ckpt_sim::cluster::{ClusterSim, SimBudget};
use ckpt_sim::metrics::{JobRecord, StreamDist};
use ckpt_sim::policy::Estimates;
use ckpt_sim::runner::{
    parallel_indexed, run_trace_counted, run_trace_stream, run_trace_stream_counted,
    run_trace_with_plans, ReplayStats, RunOptions,
};
use ckpt_sim::shard::ShardedClusterSim;
use ckpt_sim::storage::{OpId, PsResource};
use ckpt_sim::time::SimTime;
use ckpt_stats::rng::{Rng64, Xoshiro256StarStar};
use ckpt_store::{CellRecord, StoreHeader, SweepStore};
use ckpt_trace::export;
use ckpt_trace::gen::{generate, Trace};
use ckpt_trace::plan::FailurePlanArena;
use ckpt_trace::stats::{failure_prone_jobs, trace_histories_from_plans, TaskRecord};
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Executor options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepOptions {
    /// Worker threads; 0 ⇒ one per available core.
    pub threads: usize,
}

impl From<&ckpt_report::RunContext> for SweepOptions {
    fn from(ctx: &ckpt_report::RunContext) -> Self {
        SweepOptions {
            threads: ctx.threads,
        }
    }
}

/// The fault-tolerance policy a sweep runs under: the armed fault plan
/// (empty by default — nothing injected) and the failure discipline.
/// The default policy quarantines failing cells after retries so the
/// rest of the grid completes; `strict` restores fail-fast.
#[derive(Debug, Clone, Default)]
pub struct FaultPolicy {
    /// Armed injection plan, shared by every worker (and the store
    /// layer) for the whole run.
    pub faults: Arc<FaultState>,
    /// Fail the sweep on the first cell failure instead of retrying and
    /// quarantining (`--strict`).
    pub strict: bool,
}

impl FaultPolicy {
    /// The historical discipline: nothing injected, no retries, and the
    /// first cell failure aborts the whole sweep. [`run_sweep`] and the
    /// other legacy entry points run under this, so their error behavior
    /// is unchanged; [`run_sweep_guarded`] takes an explicit policy.
    pub fn fail_fast() -> Self {
        FaultPolicy {
            faults: Arc::default(),
            strict: true,
        }
    }
}

/// How a cell's evaluation ended.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CellStatus {
    /// Evaluated successfully (possibly after retries).
    #[default]
    Ok,
    /// Quarantined: every attempt failed, the retry budget is spent, and
    /// the cell exports NaN metrics with this reason in the `status`
    /// column. Failed cells are never persisted to a checkpoint store,
    /// so `--resume` re-evaluates them once the cause is fixed.
    Failed {
        /// What the last attempt died of (panic message or error).
        reason: String,
    },
}

impl CellStatus {
    /// True for a successfully evaluated cell.
    pub fn is_ok(&self) -> bool {
        matches!(self, CellStatus::Ok)
    }
}

/// One evaluated grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Cell index in row-major grid order.
    pub index: usize,
    /// The axis assignments that define this cell, rendered as strings.
    pub params: Vec<(String, String)>,
    /// Named metric summaries.
    pub metrics: Vec<(&'static str, MetricSummary)>,
    /// Ok, or quarantined with a reason.
    pub status: CellStatus,
}

impl CellResult {
    /// The rendered value of axis `key`, or an error naming the missing
    /// axis — the lookup every frame-building experiment needs.
    pub fn param(&self, key: &str) -> Result<&str, String> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| format!("sweep cell is missing the {key} axis"))
    }

    /// The named metric summary, or an error naming the missing metric.
    pub fn metric(&self, key: &str) -> Result<MetricSummary, String> {
        self.metrics
            .iter()
            .find(|(n, _)| *n == key)
            .map(|(_, m)| *m)
            .ok_or_else(|| format!("sweep cell is missing the {key} metric"))
    }
}

/// A completed sweep: every cell, in grid order.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Sweep name (from the spec).
    pub name: String,
    /// The base seed the sweep actually ran with — recorded here so
    /// export metadata stays truthful even when a [`run_sweep_ctx`]
    /// context overrode the spec's own seed.
    pub seed: u64,
    /// Evaluated cells, index-ordered.
    pub cells: Vec<CellResult>,
    /// The degraded-run summary: cells ok/quarantined, retries, faults
    /// fired. A clean run reports all-ok and zero everything.
    pub health: RunHealth,
}

/// Prepared simulation inputs, shared by every run key over the same
/// workload: the trace, its kill-plan arena, its failure histories, and
/// the estimator state.
///
/// The arena is the cross-cell fast path: kill plans depend only on
/// `(trace, failure model, priority, te, task stream)` — never on the
/// policy — so one sampling pass serves every policy/cost cell over this
/// prep slot, bit-identically (cells that change the failure axis land in
/// a different prep slot and sample their own arena).
struct PrepData {
    trace: Trace,
    plans: FailurePlanArena,
    records: Vec<TaskRecord>,
    estimates: Estimates,
}

/// One shared replay: produced once per run key, reused by every cell that
/// only differs in aggregation filters.
struct RunData {
    jobs: Vec<JobRecord>,
    /// Streaming-mode summaries (`metrics = "streaming"`, both replay
    /// engines): the record vector above stays empty and cells read these
    /// instead — including sketch-backed p50/p99.
    stream: Option<ReplayStats>,
    /// Streaming-mode queue-wait fold (cluster engine only).
    stream_queue: Option<StreamDist>,
    /// Per-job queue wait (cluster engine only, aligned with `jobs`).
    queue_wait: Option<Vec<f64>>,
    /// Cluster makespan (cluster engine only).
    makespan_s: Option<f64>,
    /// DES events processed (cluster engine only) — deterministic, so it
    /// can live in exported frames.
    events: Option<u64>,
    /// The shared trace preparation (for the failure-prone sample filter).
    prep: Arc<PrepData>,
}

/// A cache slot: filled exactly once by whichever worker claims it first;
/// other workers needing the same key block on the `OnceLock`.
type Slot<T> = Arc<OnceLock<Result<Arc<T>, String>>>;

#[derive(Default)]
struct RunCache {
    preps: Mutex<HashMap<String, Slot<PrepData>>>,
    runs: Mutex<HashMap<String, Slot<RunData>>>,
    /// Failure-prone job-id sets, keyed by `(prep key, fraction)` — the
    /// scan over all task records would otherwise repeat per filter cell.
    prones: Mutex<HashMap<String, Slot<std::collections::HashSet<u64>>>>,
}

/// Take a mutex, recovering from poisoning. A worker that panicked while
/// holding one of these locks (the panic is caught and the cell
/// quarantined upstream) must not take every other worker down with it.
/// Recovery is sound here because the guarded data is structurally valid
/// at every await-free lock release point: cache maps only gain entries
/// (slot fills go through `OnceLock`, which leaves the slot empty if the
/// initializer panics, so a retry re-runs it), and the checkpoint writer
/// appends whole frames before updating its bookkeeping.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn get_or_init<T>(
    map: &Mutex<HashMap<String, Slot<T>>>,
    key: &str,
    f: impl FnOnce() -> Result<T, String>,
) -> Result<Arc<T>, String> {
    let slot = {
        let mut slots = lock_recover(map);
        slots.entry(key.to_string()).or_default().clone()
    };
    slot.get_or_init(|| f().map(Arc::new)).clone()
}

/// Key of the trace-preparation inputs: workload shape + failure model +
/// seed + trace file, independent of policy/cost/engine configuration.
fn prep_key(spec: &ScenarioSpec) -> String {
    format!(
        "{}|{}|{:?}|{:?}|{:?}|{:?}|{}",
        spec.seed,
        spec.jobs,
        spec.trace_file,
        spec.workload,
        spec.failure_model,
        spec.failure_shape,
        spec.failure_scale
    )
}

fn prepare(spec: &ScenarioSpec) -> Result<PrepData, String> {
    let trace = match &spec.trace_file {
        Some(path) => {
            let mut trace = export::read_csv(path).map_err(|e| e.to_string())?;
            // Kill plans are drawn at run time from the trace's model, so
            // a failure_model axis must reach replayed traces too: a
            // non-default scenario model overrides whatever the CSV
            // recorded (the default keeps the CSV's own model, preserving
            // replay fidelity for exported non-default traces).
            let model = spec.failure_spec()?;
            if !model.is_default() {
                trace.failure_model = model;
            }
            trace
        }
        None => generate(&spec.workload_spec()?, spec.seed).map_err(|e| e.to_string())?,
    };
    // One sampling pass: the arena holds every task's kill plan, and the
    // histories (estimator input) derive from it instead of re-drawing —
    // identical streams, identical values.
    let plans = FailurePlanArena::build(&trace);
    let records = trace_histories_from_plans(&trace, &plans);
    let estimates = Estimates::from_records(&records);
    Ok(PrepData {
        trace,
        plans,
        records,
        estimates,
    })
}

/// How often a telemetry-observed cluster replay samples [`SimProgress`]
/// for the heartbeat sink. Purely a reporting cadence: the simulation's
/// outputs are identical for any value.
const CLUSTER_PROGRESS_EVERY: u64 = 65_536;

fn replay(
    spec: &ScenarioSpec,
    prep: Arc<PrepData>,
    threads: usize,
    telemetry: Option<&Telemetry>,
) -> Result<RunData, String> {
    let cfg = spec.policy_config();
    match spec.engine {
        EngineKind::Fast => {
            // `threads` is the sweep's per-replay budget: total capacity
            // divided by the number of distinct replays, so filter-heavy
            // grids (few replays, many cells) still use every core.
            // Kill plans come from the prep slot's shared arena — sampled
            // once per (trace, failure model), replayed by every
            // policy/cost cell.
            if spec.metrics == MetricsChoice::Streaming {
                validate_streaming(spec)?;
                let stream = match telemetry {
                    Some(t) => run_trace_stream_counted(
                        &prep.trace,
                        &prep.estimates,
                        &cfg,
                        RunOptions { threads },
                        Some(&prep.plans),
                        &t.counters,
                    ),
                    None => run_trace_stream(
                        &prep.trace,
                        &prep.estimates,
                        &cfg,
                        RunOptions { threads },
                        Some(&prep.plans),
                    ),
                };
                return Ok(RunData {
                    jobs: Vec::new(),
                    stream: Some(stream),
                    stream_queue: None,
                    queue_wait: None,
                    makespan_s: None,
                    events: None,
                    prep,
                });
            }
            let jobs = match telemetry {
                Some(t) => run_trace_counted(
                    &prep.trace,
                    &prep.estimates,
                    &cfg,
                    RunOptions { threads },
                    Some(&prep.plans),
                    &t.counters,
                ),
                None => run_trace_with_plans(
                    &prep.trace,
                    &prep.estimates,
                    &cfg,
                    RunOptions { threads },
                    &prep.plans,
                ),
            };
            Ok(RunData {
                jobs,
                stream: None,
                stream_queue: None,
                queue_wait: None,
                makespan_s: None,
                events: None,
                prep,
            })
        }
        EngineKind::Cluster => {
            // The scenario's failure model drives host failures too, so
            // one `failure_model` axis swaps the hazard end to end (task
            // kills come from the trace, which already carries it).
            let mut cluster_cfg = spec.cluster;
            cluster_cfg.failure_model = spec.failure_spec()?;
            // Streaming metrics: sweep aggregation never reads the raw
            // checkpoint-duration sample, so stress-scale cells keep
            // constant per-event memory. (Cell outputs are unaffected —
            // the simulation itself is identical in both modes.)
            // Task kill plans come from the prep slot's shared arena —
            // one sampling pass per (trace, failure model), reused by
            // every policy/cost cell, byte-identical to fresh sampling.
            let result = if spec.shards > 1 {
                // Sharded path: the host fleet splits into contiguous
                // groups, one engine per shard on the work-stealing
                // substrate, metric/counter folds at window barriers in
                // shard order — results depend on `shards`, never on
                // `threads`. `shards = 1` must stay byte-identical to the
                // historical engine, so it takes the branch below.
                let sim = ShardedClusterSim::new(
                    cluster_cfg,
                    &prep.trace,
                    &prep.estimates,
                    cfg,
                    spec.shards,
                )
                .with_plans(&prep.plans)
                .with_threads(threads)
                .with_metrics(ckpt_sim::cluster::MetricsMode::Streaming);
                match telemetry {
                    Some(t) => {
                        let mut last_events = 0u64;
                        let (result, obs) = sim
                            .run_observed::<Counters>(|p| {
                                if let Some(progress) = &t.progress {
                                    progress.add_events(p.events - last_events);
                                    last_events = p.events;
                                    progress.beat();
                                }
                            })
                            .map_err(|e| format!("key \"shards\": {e}"))?;
                        obs.verify_shard_invariants(spec.shards as u64, result.events)
                            .map_err(|e| format!("sharded run accounting violated: {e}"))?;
                        t.counters.absorb(&obs);
                        result
                    }
                    None => sim.run().map_err(|e| format!("key \"shards\": {e}"))?,
                }
            } else {
                let sim = ClusterSim::with_plans(
                    cluster_cfg,
                    &prep.trace,
                    &prep.estimates,
                    cfg,
                    &prep.plans,
                )
                .with_metrics(ckpt_sim::cluster::MetricsMode::Streaming);
                match telemetry {
                    Some(t) => {
                        // Observed run: a Counters cell rides the DES (same
                        // event stream, bit-identical results) and SimProgress
                        // snapshots feed the heartbeat sink while long stress
                        // cells run.
                        let budget = SimBudget {
                            progress_every: if t.progress.is_some() {
                                CLUSTER_PROGRESS_EVERY
                            } else {
                                0
                            },
                            ..SimBudget::UNLIMITED
                        };
                        let mut last_events = 0u64;
                        let (result, _status, obs) = sim
                            .with_observer(Counters::new())
                            .run_observed(budget, |p| {
                                if let Some(progress) = &t.progress {
                                    progress.add_events(p.events - last_events);
                                    last_events = p.events;
                                    progress.beat();
                                }
                            });
                        if let Some(progress) = &t.progress {
                            progress.add_events(result.events - last_events);
                        }
                        t.counters.absorb(&obs);
                        result
                    }
                    None => sim.run(),
                }
            };
            if spec.metrics == MetricsChoice::Streaming {
                validate_streaming(spec)?;
                // Fold job records in job order. The DES emits jobs in a
                // deterministic order that does not depend on the sweep's
                // replay-thread budget, so the fold (and the sketches it
                // fills) is byte-identical at any thread count.
                let mut stream = ReplayStats::new();
                let mut queue = StreamDist::new();
                for j in &result.jobs {
                    stream.add(&j.base);
                    queue.add(j.queue_wait);
                }
                return Ok(RunData {
                    jobs: Vec::new(),
                    stream: Some(stream),
                    stream_queue: Some(queue),
                    queue_wait: None,
                    makespan_s: Some(result.makespan.as_secs_f64()),
                    events: Some(result.events),
                    prep,
                });
            }
            let queue_wait = result.jobs.iter().map(|j| j.queue_wait).collect();
            let events = result.events;
            let jobs = result.jobs.into_iter().map(|j| j.base).collect();
            Ok(RunData {
                jobs,
                stream: None,
                stream_queue: None,
                queue_wait: Some(queue_wait),
                makespan_s: Some(result.makespan.as_secs_f64()),
                events: Some(events),
                prep,
            })
        }
        _ => unreachable!("replay() is only called for trace engines"),
    }
}

/// Streaming cells fold records at replay time, before any aggregation
/// filter could apply — so the filters must all be at their pass-through
/// settings, validated here with the offending spec keys named.
fn validate_streaming(spec: &ScenarioSpec) -> Result<(), String> {
    let mut blocked = Vec::new();
    if spec.sample != SampleFilter::All {
        blocked.push("sample (set sample = \"all\")");
    }
    if spec.structure.is_some() {
        blocked.push("structure");
    }
    if spec.priority.is_some() {
        blocked.push("priority");
    }
    if spec.max_task_length.is_some() {
        blocked.push("max_task_length");
    }
    if blocked.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "key \"metrics\": streaming summaries fold records before filters apply; \
             incompatible with: {}",
            blocked.join(", ")
        ))
    }
}

/// The streaming-mode metric set: same names and order as the full-record
/// path, summarized from the fold. p50/p99 come from each stream's
/// mergeable quantile sketch — exact in rank, within the sketch's
/// documented ≈ 1 % relative value-error bound of the full-record
/// percentiles (see [`ckpt_stats::sketch`]).
fn stream_metrics(stats: &ReplayStats) -> Vec<(&'static str, MetricSummary)> {
    vec![
        ("wpr", MetricSummary::from_stream(&stats.wpr)),
        ("wall_s", MetricSummary::from_stream(&stats.wall)),
        (
            "ckpt_overhead_s",
            MetricSummary::from_stream(&stats.checkpoint_time),
        ),
        (
            "rollback_s",
            MetricSummary::from_stream(&stats.rollback_loss),
        ),
        ("restart_s", MetricSummary::from_stream(&stats.restart_time)),
        ("failures", MetricSummary::from_stream(&stats.failures)),
        (
            "checkpoints",
            MetricSummary::from_stream(&stats.checkpoints),
        ),
    ]
}

/// Indices of `data.jobs` that pass the scenario's aggregation filters.
fn filtered_indices(
    spec: &ScenarioSpec,
    data: &RunData,
    cache: &RunCache,
) -> Result<Vec<usize>, String> {
    let prone = match spec.sample {
        SampleFilter::All => None,
        SampleFilter::FailureProne { fraction } => {
            let key = format!("{}|{}", prep_key(spec), fraction.to_bits());
            Some(get_or_init(&cache.prones, &key, || {
                Ok(failure_prone_jobs(&data.prep.records, fraction))
            })?)
        }
    };
    Ok(data
        .jobs
        .iter()
        .enumerate()
        .filter(|(_, r)| prone.as_ref().is_none_or(|p| p.contains(&r.job_id)))
        .filter(|(_, r)| spec.structure.is_none_or(|s| r.structure == s))
        .filter(|(_, r)| spec.priority.is_none_or(|p| r.priority == p))
        .filter(|(_, r)| spec.max_task_length.is_none_or(|l| r.max_task_length <= l))
        .map(|(i, _)| i)
        .collect())
}

fn replay_metrics(
    spec: &ScenarioSpec,
    data: &RunData,
    cache: &RunCache,
) -> Result<Vec<(&'static str, MetricSummary)>, String> {
    if let Some(stats) = &data.stream {
        let mut metrics = stream_metrics(stats);
        if let Some(queue) = &data.stream_queue {
            metrics.push(("queue_wait_s", MetricSummary::from_stream(queue)));
        }
        if let Some(makespan) = data.makespan_s {
            metrics.push(("makespan_s", MetricSummary::from_value(makespan)));
        }
        if let Some(events) = data.events {
            metrics.push(("events", MetricSummary::from_value(events as f64)));
        }
        return Ok(metrics);
    }
    let idx = filtered_indices(spec, data, cache)?;
    let collect = |f: &dyn Fn(&JobRecord) -> f64| -> Vec<f64> {
        idx.iter().map(|&i| f(&data.jobs[i])).collect()
    };
    let mut metrics = vec![
        ("wpr", MetricSummary::from_values(&collect(&|r| r.wpr()))),
        (
            "wall_s",
            MetricSummary::from_values(&collect(&|r| r.total_wall)),
        ),
        (
            "ckpt_overhead_s",
            MetricSummary::from_values(&collect(&|r| r.checkpoint_time)),
        ),
        (
            "rollback_s",
            MetricSummary::from_values(&collect(&|r| r.rollback_loss)),
        ),
        (
            "restart_s",
            MetricSummary::from_values(&collect(&|r| r.restart_time)),
        ),
        (
            "failures",
            MetricSummary::from_values(&collect(&|r| r.failures as f64)),
        ),
        (
            "checkpoints",
            MetricSummary::from_values(&collect(&|r| r.checkpoints as f64)),
        ),
    ];
    if let Some(waits) = &data.queue_wait {
        let w: Vec<f64> = idx.iter().map(|&i| waits[i]).collect();
        metrics.push(("queue_wait_s", MetricSummary::from_values(&w)));
    }
    if let Some(makespan) = data.makespan_s {
        metrics.push(("makespan_s", MetricSummary::from_value(makespan)));
    }
    if let Some(events) = data.events {
        metrics.push(("events", MetricSummary::from_value(events as f64)));
    }
    Ok(metrics)
}

fn ckpt_cost_metrics(spec: &ScenarioSpec) -> Vec<(&'static str, MetricSummary)> {
    let blcr = BlcrModel;
    let unit = spec
        .cost
        .apply_ckpt(blcr.checkpoint_cost(spec.device, spec.mem_mb));
    vec![
        ("unit_cost_s", MetricSummary::from_value(unit)),
        (
            "total_cost_s",
            MetricSummary::from_value(unit * spec.n_checkpoints as f64),
        ),
    ]
}

/// Durations of `degree` simultaneous checkpoint operations, Table 2/3
/// style: ramdisk ops are independent; central NFS contends on one
/// processor-sharing server; DM-NFS spreads ops over per-host servers
/// picked uniformly at random. The server bank is created once by the
/// caller and reset between rounds (constructing `PsResource`s draws no
/// randomness, so the hoist leaves every draw — and every duration —
/// unchanged).
fn contention_round(
    spec: &ScenarioSpec,
    rng: &mut Xoshiro256StarStar,
    servers: &mut [PsResource],
    durations: &mut Vec<f64>,
) {
    let blcr = BlcrModel;
    match spec.device {
        Device::Ramdisk => {
            for _ in 0..spec.degree {
                durations.push(blcr.checkpoint_cost_jittered(spec.device, spec.mem_mb, rng));
            }
        }
        Device::CentralNfs | Device::DmNfs => {
            let n_servers = servers.len();
            for server in servers.iter_mut() {
                server.reset();
            }
            let t0 = SimTime::ZERO;
            for i in 0..spec.degree {
                let demand = blcr.checkpoint_cost_jittered(spec.device, spec.mem_mb, rng);
                let server = if n_servers == 1 {
                    0
                } else {
                    rng.next_range(n_servers as u64) as usize
                };
                servers[server].add(t0, OpId(i as u64), demand);
            }
            for server in servers.iter_mut() {
                let mut now = t0;
                while let Some((op, when)) = server.next_completion(now) {
                    server.remove(when, op);
                    durations.push(when.as_secs_f64());
                    now = when;
                }
            }
        }
    }
}

fn contention_metrics(
    spec: &ScenarioSpec,
    cell_index: usize,
) -> Vec<(&'static str, MetricSummary)> {
    // Per-cell stream: thread-count invariant by construction.
    let mut rng = Xoshiro256StarStar::stream(spec.seed, cell_index as u64);
    // One server bank for the whole cell, reset per round — the per-round
    // rebuild used to reallocate `n_hosts` PS servers × reps.
    let n_servers = match spec.device {
        Device::Ramdisk => 0,
        Device::CentralNfs => 1,
        Device::DmNfs => spec.cluster.n_hosts.max(1),
    };
    let mut servers: Vec<PsResource> = (0..n_servers)
        .map(|_| PsResource::new(spec.cluster.storage_rate))
        .collect();
    let mut durations = Vec::with_capacity(spec.reps * spec.degree);
    for _ in 0..spec.reps {
        contention_round(spec, &mut rng, &mut servers, &mut durations);
    }
    vec![("duration_s", MetricSummary::from_values(&durations))]
}

/// Time `f` into the telemetry bundle's phase timer (when telemetry is
/// attached; otherwise just run it). Worker threads time concurrently, so
/// phase totals are *aggregate worker time*, not wall clock — and they
/// live strictly outside the deterministic outputs.
fn timed<T>(telemetry: Option<&Telemetry>, phase: Phase, f: impl FnOnce() -> T) -> T {
    match telemetry {
        Some(t) => t.timers.time(phase, f),
        None => f(),
    }
}

fn evaluate_cell(
    sweep: &SweepSpec,
    spec: &ScenarioSpec,
    cell_index: usize,
    replay_threads: usize,
    cache: &RunCache,
    telemetry: Option<&Telemetry>,
) -> Result<CellResult, String> {
    // `metrics = "streaming"` is a replay-engine mode (fast and cluster);
    // an analytic engine silently ignoring it would leave the user
    // believing it is active, so reject that combination by name for
    // every engine here (not per-branch, where the analytic engines
    // would skip the check).
    if spec.metrics == MetricsChoice::Streaming
        && !matches!(spec.engine, EngineKind::Fast | EngineKind::Cluster)
    {
        return Err(format!(
            "key \"metrics\": streaming summaries are a replay-engine mode (engine is {:?}; \
             the analytic engines have no replay to stream)",
            spec.engine.label()
        ));
    }
    let metrics = match spec.engine {
        EngineKind::Fast | EngineKind::Cluster => {
            // The cache makes counter totals thread-invariant: counters
            // tick only inside the fill closure, so each distinct replay
            // is counted exactly once no matter how many cells share it
            // or which worker claims the slot.
            let data = get_or_init(&cache.runs, &spec.run_key(), || {
                let prep = timed(telemetry, Phase::Sample, || {
                    get_or_init(&cache.preps, &prep_key(spec), || prepare(spec))
                })?;
                timed(telemetry, Phase::Simulate, || {
                    replay(spec, prep, replay_threads, telemetry)
                })
            })?;
            timed(telemetry, Phase::Aggregate, || {
                replay_metrics(spec, &data, cache)
            })?
        }
        EngineKind::CkptCost => ckpt_cost_metrics(spec),
        EngineKind::Contention => timed(telemetry, Phase::Simulate, || {
            contention_metrics(spec, cell_index)
        }),
    };
    if let Some(t) = telemetry {
        t.counters.add(Counter::CellsEvaluated, 1);
        if let Some(progress) = &t.progress {
            progress.cell_done();
        }
    }
    let params = sweep
        .cell_params(cell_index)
        .into_iter()
        .map(|(k, v)| (k, v.render()))
        .collect();
    Ok(CellResult {
        index: cell_index,
        params,
        metrics,
        status: CellStatus::Ok,
    })
}

/// Render a caught panic payload into a quarantine reason.
fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string());
    format!("panicked: {msg}")
}

/// This run's health tallies, shared by every worker. Kept separate from
/// telemetry counters so [`RunHealth`] is reported even without a
/// telemetry bundle attached.
#[derive(Default)]
struct HealthTally {
    cell_retries: AtomicU64,
    io_retries: AtomicU64,
}

/// One transient-io retry step: stderr note, counter ticks, deterministic
/// backoff (through the policy's clock, so tests inject a fake one).
fn io_retry_pause(
    what: &str,
    detail: &str,
    retry: &mut u32,
    policy: &FaultPolicy,
    telemetry: Option<&Telemetry>,
    tally: &HealthTally,
) {
    eprintln!(
        "sweep: transient io failure {what} ({detail}); retry {}/{}",
        *retry + 1,
        ckpt_faults::MAX_ATTEMPTS - 1
    );
    if let Some(t) = telemetry {
        t.counters.add(Counter::IoRetries, 1);
    }
    tally.io_retries.fetch_add(1, Ordering::Relaxed);
    policy.faults.sleep_backoff(*retry);
    *retry += 1;
}

/// [`evaluate_cell`] under the fault policy: injected cell faults fire
/// first (before any cache fill, so counters never half-tick for an
/// injected failure), panics unwind no further than this frame, and a
/// failing cell is retried with backoff up to [`ckpt_faults::MAX_ATTEMPTS`]
/// total attempts before being quarantined as [`CellStatus::Failed`] —
/// unless the policy is strict, in which case the first failure is fatal.
#[allow(clippy::too_many_arguments)]
fn evaluate_cell_guarded(
    sweep: &SweepSpec,
    spec: &ScenarioSpec,
    cell_index: usize,
    replay_threads: usize,
    cache: &RunCache,
    telemetry: Option<&Telemetry>,
    policy: &FaultPolicy,
    tally: &HealthTally,
) -> Result<CellResult, String> {
    let mut attempt = 1u32;
    loop {
        let injected = policy.faults.cell_fault(cell_index as u64);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| match injected {
            Some(CellFault::Panic) => panic!("injected fault: panic at cell {cell_index}"),
            Some(CellFault::Budget) => Err(format!(
                "injected fault: budget exhausted at cell {cell_index}"
            )),
            None => evaluate_cell(sweep, spec, cell_index, replay_threads, cache, telemetry),
        }));
        let reason = match outcome {
            Ok(Ok(cell)) => return Ok(cell),
            Ok(Err(e)) => e,
            Err(payload) => panic_reason(payload),
        };
        if policy.strict {
            return Err(reason);
        }
        if attempt < ckpt_faults::MAX_ATTEMPTS {
            eprintln!(
                "sweep: cell {cell_index} failed ({reason}); retry {attempt}/{}",
                ckpt_faults::MAX_ATTEMPTS - 1
            );
            if let Some(t) = telemetry {
                t.counters.add(Counter::CellsRetried, 1);
            }
            tally.cell_retries.fetch_add(1, Ordering::Relaxed);
            policy.faults.sleep_backoff(attempt - 1);
            attempt += 1;
            continue;
        }
        // Retry budget spent: quarantine. The cell keeps its place in the
        // grid with NaN metrics and the reason in its status; it is never
        // persisted, so a later --resume re-evaluates it.
        eprintln!("sweep: cell {cell_index} quarantined after {attempt} attempts: {reason}");
        if let Some(t) = telemetry {
            t.counters.add(Counter::CellsFailed, 1);
            if let Some(progress) = &t.progress {
                progress.cell_done();
            }
        }
        let params = sweep
            .cell_params(cell_index)
            .into_iter()
            .map(|(k, v)| (k, v.render()))
            .collect();
        return Ok(CellResult {
            index: cell_index,
            params,
            metrics: vec![("failed", MetricSummary::from_values(&[]))],
            status: CellStatus::Failed { reason },
        });
    }
}

/// Run a sweep under a shared [`ckpt_report::RunContext`]: the context's
/// seed replaces the spec's base seed, its scale sets the base job count
/// (trace engines; per-cell axes still win, and analytic engines ignore
/// it), and its thread budget drives the executor — so a sweep cell and a
/// standalone experiment are controlled by one `(seed, scale, threads)`
/// triple.
pub fn run_sweep_ctx(
    sweep: &SweepSpec,
    ctx: &ckpt_report::RunContext,
) -> Result<SweepResult, SweepError> {
    run_sweep_telemetry(
        &sweep.contextualized(ctx),
        SweepOptions::from(ctx),
        ctx.telemetry.as_deref(),
    )
}

/// Run every cell of a sweep, in parallel, deterministically.
pub fn run_sweep(sweep: &SweepSpec, options: SweepOptions) -> Result<SweepResult, SweepError> {
    run_sweep_telemetry(sweep, options, None)
}

/// [`run_sweep`] with an optional telemetry bundle attached. Counters
/// accumulate simulation facts (thread-invariant by construction: each
/// distinct replay counts once, in the cache fill), phase timers
/// accumulate worker time, and — if the bundle carries a progress sink —
/// cell completions and DES event counts stream as stderr heartbeats.
/// With `None` this is exactly [`run_sweep`]: instrumentation compiles
/// to nothing in the replay loops and outputs are byte-identical.
pub fn run_sweep_telemetry(
    sweep: &SweepSpec,
    options: SweepOptions,
    telemetry: Option<&Telemetry>,
) -> Result<SweepResult, SweepError> {
    run_sweep_inner(sweep, options, telemetry, None, &FaultPolicy::fail_fast())
        .map(|(result, _)| result)
}

/// The fully general entry point: [`run_sweep_telemetry`] plus optional
/// checkpointing plus an explicit [`FaultPolicy`]. Under a non-strict
/// policy, failing cells are retried with deterministic backoff and then
/// quarantined (NaN metrics, [`CellStatus::Failed`]) while the rest of
/// the grid completes; transient store-I/O errors are retried the same
/// way. With an empty fault plan and no genuine failures, results are
/// byte-identical to the legacy entry points.
pub fn run_sweep_guarded(
    sweep: &SweepSpec,
    options: SweepOptions,
    telemetry: Option<&Telemetry>,
    config: Option<&CheckpointConfig>,
    policy: &FaultPolicy,
) -> Result<(SweepResult, Option<ResumeReport>), SweepError> {
    run_sweep_inner(sweep, options, telemetry, config, policy)
}

/// [`run_sweep_telemetry`] with cell-level checkpointing: each completed
/// cell is persisted to an append-only [`SweepStore`] as its worker
/// finishes it, and a resume run loads the persisted cells (validated
/// against the current spec) and evaluates only the missing ones.
///
/// Because every cell is a pure function of `(spec, seed, cell index)`,
/// the merged result — and therefore every exported byte — is identical
/// whether the sweep ran straight through or was killed and resumed any
/// number of times, at any thread count.
pub fn run_sweep_checkpointed(
    sweep: &SweepSpec,
    options: SweepOptions,
    telemetry: Option<&Telemetry>,
    config: &CheckpointConfig,
) -> Result<(SweepResult, ResumeReport), SweepError> {
    let (result, report) = run_sweep_inner(
        sweep,
        options,
        telemetry,
        Some(config),
        &FaultPolicy::fail_fast(),
    )?;
    Ok((result, report.expect("checkpointed run always reports")))
}

/// The store plus this run's persistence bookkeeping, behind one lock.
/// Workers take it only *between* cells (appending a finished result),
/// never inside a replay — the simulation hot path stays lock-free.
struct CkptWriter {
    store: SweepStore,
    /// Records persisted by this run (not counting loaded ones).
    written: u64,
    /// Fault injection: abort once `written` reaches this.
    crash_after: Option<u64>,
}

impl CkptWriter {
    /// Append one finished cell; with the crash hook armed, abort the
    /// process once enough records landed — while still holding the lock,
    /// so exactly `crash_after` records exist on disk.
    ///
    /// Store faults (injected or genuine) are classified here: transient
    /// kinds retry with backoff under a non-strict policy, torn-write
    /// injection leaves half a frame on disk and dies like a mid-append
    /// kill, anything else is fatal for the whole run — a store that can't
    /// persist is not a per-cell problem.
    fn persist(
        writer: &Mutex<CkptWriter>,
        spec: &ScenarioSpec,
        cell: &CellResult,
        telemetry: Option<&Telemetry>,
        policy: &FaultPolicy,
        tally: &HealthTally,
    ) -> Result<(), String> {
        let record = CellRecord {
            index: cell.index as u64,
            key_digest: ckpt::cell_key_digest(&spec.run_key(), &cell.params),
            payload: ckpt::encode_cell(cell),
        };
        let what = format!("persisting cell {}", cell.index);
        let mut retry = 0u32;
        loop {
            // Injected store faults fire once per append attempt, before
            // the real write — the file only ever sees the final
            // successful append (or the torn frame below).
            match policy.faults.store_write_fault() {
                Some(WriteFault::Torn) => {
                    let mut w = lock_recover(writer);
                    // Half a frame, no bookkeeping, die hard: the next
                    // open must detect and truncate the torn tail.
                    let _ = w.store.append_torn(&record);
                    eprintln!(
                        "ckpt fault: torn write persisting cell {}; aborting mid-append",
                        cell.index
                    );
                    std::process::exit(ckpt::CRASH_EXIT_CODE);
                }
                Some(WriteFault::Io(kind)) => {
                    if is_transient_kind(kind)
                        && !policy.strict
                        && retry < ckpt_faults::MAX_ATTEMPTS - 1
                    {
                        io_retry_pause(
                            &what,
                            io_kind_name(kind),
                            &mut retry,
                            policy,
                            telemetry,
                            tally,
                        );
                        continue;
                    }
                    return Err(format!(
                        "{what}: injected io error ({})",
                        io_kind_name(kind)
                    ));
                }
                None => {}
            }
            let mut w = lock_recover(writer);
            match w.store.append(&record) {
                Ok(()) => {}
                Err(e)
                    if e.is_transient()
                        && !policy.strict
                        && retry < ckpt_faults::MAX_ATTEMPTS - 1 =>
                {
                    drop(w);
                    io_retry_pause(&what, &e.to_string(), &mut retry, policy, telemetry, tally);
                    continue;
                }
                Err(e) => return Err(format!("{what}: {e}")),
            }
            w.written += 1;
            if let Some(t) = telemetry {
                t.counters.add(Counter::CkptRecordsWritten, 1);
            }
            if let Some(limit) = w.crash_after {
                if w.written >= limit {
                    // Simulated preemption for kill-and-resume tests: die
                    // hard (no unwinding, no final sync), like a real
                    // kill -9 — appended records are already in the file.
                    eprintln!(
                        "ckpt crash hook: aborting after {} persisted cell{}",
                        w.written,
                        if w.written == 1 { "" } else { "s" }
                    );
                    std::process::exit(ckpt::CRASH_EXIT_CODE);
                }
            }
            return Ok(());
        }
    }
}

/// Open-or-create the sweep's store per the config, returning the store
/// positioned to append, the cells loaded from it (resume only), and the
/// partially filled report.
fn open_store(
    sweep: &SweepSpec,
    cells: &[ScenarioSpec],
    config: &CheckpointConfig,
    policy: &FaultPolicy,
    telemetry: Option<&Telemetry>,
    tally: &HealthTally,
) -> Result<(SweepStore, HashMap<usize, CellResult>, ResumeReport), SweepError> {
    let fail = |e: ckpt_store::StoreError| SweepError(e.to_string());
    std::fs::create_dir_all(&config.dir)
        .map_err(|e| SweepError(format!("checkpoint dir {}: {e}", config.dir.display())))?;
    let path = config.store_path(&sweep.name);
    // Injected open faults and genuinely transient open errors retry with
    // backoff (non-strict policy); everything else is fatal.
    let open_guarded = |what: &str,
                        f: &mut dyn FnMut() -> Result<
        (SweepStore, Vec<CellRecord>, ckpt_store::OpenReport),
        ckpt_store::StoreError,
    >| {
        let mut retry = 0u32;
        loop {
            if let Some(kind) = policy.faults.store_open_fault() {
                if is_transient_kind(kind)
                    && !policy.strict
                    && retry < ckpt_faults::MAX_ATTEMPTS - 1
                {
                    io_retry_pause(
                        what,
                        io_kind_name(kind),
                        &mut retry,
                        policy,
                        telemetry,
                        tally,
                    );
                    continue;
                }
                return Err(SweepError(format!(
                    "{what}: injected io error ({})",
                    io_kind_name(kind)
                )));
            }
            match f() {
                Ok(v) => return Ok(v),
                Err(e)
                    if e.is_transient()
                        && !policy.strict
                        && retry < ckpt_faults::MAX_ATTEMPTS - 1 =>
                {
                    io_retry_pause(what, &e.to_string(), &mut retry, policy, telemetry, tally);
                }
                Err(e) => return Err(fail(e)),
            }
        }
    };
    let header = StoreHeader {
        spec_digest: ckpt::sweep_digest(sweep),
        seed: sweep.base.seed,
        scale: sweep.base.jobs as u64,
        grid_size: cells.len() as u64,
    };
    let mut report = ResumeReport {
        store_path: path.clone(),
        ..ResumeReport::default()
    };
    let mut loaded = HashMap::new();
    let store = if config.resume && ckpt::store_exists(&path) {
        let (store, records, open) =
            open_guarded(&format!("opening {}", path.display()), &mut || {
                SweepStore::open(&path)
            })?;
        store.header().validate_against(&header).map_err(fail)?;
        report.recovered = open.warning;
        for record in records {
            // The store guarantees index < grid_size; the digest ties the
            // record to this exact cell's simulation inputs and rendered
            // params under the *current* spec.
            let index = record.index as usize;
            let cell = ckpt::decode_cell(index, &record.payload)
                .map_err(|e| SweepError(format!("cell {index} in {}: {e}", path.display())))?;
            let expect = ckpt::cell_key_digest(&cells[index].run_key(), &cell.params);
            if record.key_digest != expect {
                return Err(SweepError(format!(
                    "cell {index} in {} does not match the current spec \
                     (rerun without --resume to start fresh)",
                    path.display()
                )));
            }
            // Duplicate indices: last record wins (a re-run after a crash
            // that lost the in-memory dedup can legitimately re-append).
            loaded.insert(index, cell);
        }
        store
    } else {
        report.fresh_start = config.resume;
        let (store, _, _) = open_guarded(&format!("creating {}", path.display()), &mut || {
            SweepStore::create(&path, header)
                .map(|s| (s, Vec::new(), ckpt_store::OpenReport::default()))
        })?;
        store
    };
    report.loaded = loaded.len();
    Ok((store, loaded, report))
}

fn run_sweep_inner(
    sweep: &SweepSpec,
    options: SweepOptions,
    telemetry: Option<&Telemetry>,
    config: Option<&CheckpointConfig>,
    policy: &FaultPolicy,
) -> Result<(SweepResult, Option<ResumeReport>), SweepError> {
    let n = sweep.grid_size();
    let cells = timed(telemetry, Phase::Plan, || sweep.cells())?;
    let cache = RunCache::default();
    let tally = HealthTally::default();

    // Checkpointing: open/create the store and split the grid into cells
    // already on disk and cells still to evaluate. Without a config this
    // collapses to "everything is missing" and zero extra work.
    let (writer, loaded, mut report) = match config {
        Some(cfg) => {
            let (store, loaded, report) =
                open_store(sweep, &cells, cfg, policy, telemetry, &tally)?;
            let writer = Mutex::new(CkptWriter {
                store,
                written: 0,
                // The env-var hook and a `crash@cells=N` plan directive
                // feed the same counter; the explicit config wins.
                crash_after: cfg.crash_after_cells.or(policy.faults.crash_after_cells()),
            });
            (Some(writer), loaded, Some(report))
        }
        None => (None, HashMap::new(), None),
    };
    // "Resumed" cells are the ones a resume run evaluates on top of an
    // existing store (a fresh start under --resume is just a plain run).
    let resuming =
        config.is_some_and(|c| c.resume) && report.as_ref().is_some_and(|r| !r.fresh_start);
    let missing: Vec<usize> = (0..n).filter(|i| !loaded.contains_key(i)).collect();
    if let Some(r) = report.as_mut() {
        r.evaluated = missing.len();
    }
    if let Some(t) = telemetry {
        if !loaded.is_empty() {
            t.counters.add(Counter::CellsSkipped, loaded.len() as u64);
        }
    }
    if let Some(progress) = telemetry.and_then(|t| t.progress.as_ref()) {
        progress.set_cells_total(n as u64);
        for _ in 0..loaded.len() {
            progress.cell_done();
        }
    }

    // Budget nested parallelism: grids with fewer distinct replays than
    // cells (filter axes) would otherwise leave workers blocked on the
    // run cache while each replay runs single-threaded. Splitting total
    // capacity across the distinct replays keeps workers × replay-threads
    // ≈ capacity without oversubscribing. (Replay results are
    // thread-count-invariant, so this never changes output bytes.)
    let capacity = if options.threads == 0 {
        std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
    } else {
        options.threads
    };
    // Only replays that can use extra threads dilute the per-replay
    // budget: fast-engine cells (the parallel trace runner) and sharded
    // cluster cells (one engine per shard). Unsharded cluster DES cells
    // are inherently sequential. Resumed runs budget over the cells they
    // actually evaluate.
    let distinct_replays = missing
        .iter()
        .filter(|&&i| match cells[i].engine {
            EngineKind::Fast => true,
            EngineKind::Cluster => cells[i].shards > 1,
            _ => false,
        })
        .map(|&i| cells[i].run_key())
        .collect::<std::collections::HashSet<_>>()
        .len();
    let replay_threads = capacity.checked_div(distinct_replays).unwrap_or(1).max(1);

    let evaluated: Vec<Result<CellResult, String>> =
        parallel_indexed(missing.len(), options.threads, |j| {
            let i = missing[j];
            let cell = evaluate_cell_guarded(
                sweep,
                &cells[i],
                i,
                replay_threads,
                &cache,
                telemetry,
                policy,
                &tally,
            )?;
            if let Some(writer) = &writer {
                // Persist at the worker's join point, after the replay is
                // done — the store lock never contends with simulation.
                // Quarantined cells are never persisted: the store holds
                // only real results, so --resume re-evaluates them.
                if cell.status.is_ok() {
                    CkptWriter::persist(writer, &cells[i], &cell, telemetry, policy, &tally)?;
                }
            }
            Ok(cell)
        });

    // Merge loaded and evaluated cells back into grid order. Loaded cells
    // decode to bit-exact copies of their original evaluation, and every
    // cell is deterministic in (spec, seed, index) — so this vector is
    // byte-for-byte the uninterrupted run's.
    let mut slots: Vec<Option<CellResult>> = (0..n).map(|_| None).collect();
    for (index, cell) in loaded {
        slots[index] = Some(cell);
    }
    for (j, result) in evaluated.into_iter().enumerate() {
        let i = missing[j];
        match result {
            Ok(cell) => slots[i] = Some(cell),
            Err(e) => return Err(SweepError(format!("cell {i}: {e}"))),
        }
    }
    let result_cells: Vec<CellResult> = slots
        .into_iter()
        .map(|s| s.expect("every grid cell is loaded or evaluated"))
        .collect();

    if let (Some(t), true) = (telemetry, resuming) {
        t.counters.add(
            Counter::CellsResumed,
            report.as_ref().map_or(0, |r| r.evaluated) as u64,
        );
    }
    if let Some(writer) = writer {
        let w = writer.into_inner().unwrap_or_else(|e| e.into_inner());
        w.store
            .sync()
            .map_err(|e| SweepError(format!("syncing checkpoint store: {e}")))?;
    }
    let cells_ok = result_cells.iter().filter(|c| c.status.is_ok()).count() as u64;
    let health = RunHealth {
        cells_ok,
        cells_quarantined: result_cells.len() as u64 - cells_ok,
        cell_retries: tally.cell_retries.load(Ordering::Relaxed),
        io_retries: tally.io_retries.load(Ordering::Relaxed),
        faults_injected: policy.faults.fired_total(),
    };
    if let Some(t) = telemetry {
        t.counters
            .add(Counter::FaultsInjected, health.faults_injected);
    }
    Ok((
        SweepResult {
            name: sweep.name.clone(),
            seed: sweep.base.seed,
            cells: result_cells,
            health,
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r#"
        [sweep]
        name = "small"
        engine = "fast"
        seed = 9
        jobs = 150

        [axes]
        policy = ["formula3", "none"]
        ckpt_cost_scale = { from = 0.5, to = 2.0, steps = 2 }
    "#;

    /// A policy with the given plan text and a fake clock, so tests never
    /// actually sleep through the backoff schedule.
    fn test_policy(plan: &str, strict: bool) -> FaultPolicy {
        let plan = ckpt_faults::FaultPlan::parse(plan).unwrap();
        FaultPolicy {
            faults: Arc::new(ckpt_faults::FaultState::with_clock(
                plan,
                Box::new(ckpt_faults::TestClock::default()),
            )),
            strict,
        }
    }

    #[test]
    fn injected_panic_quarantines_one_cell_and_completes_the_grid() {
        let sweep = SweepSpec::from_str(SMALL).unwrap();
        let policy = test_policy("panic@cell=2", false);
        let (result, _) =
            run_sweep_guarded(&sweep, SweepOptions { threads: 2 }, None, None, &policy).unwrap();
        assert_eq!(result.cells.len(), 4);
        for (i, c) in result.cells.iter().enumerate() {
            assert_eq!(c.index, i);
            if i == 2 {
                let CellStatus::Failed { reason } = &c.status else {
                    panic!("cell 2 should be quarantined");
                };
                assert!(
                    reason.contains("injected fault: panic at cell 2"),
                    "{reason}"
                );
                // NaN metrics, still exportable.
                assert_eq!(c.metrics.len(), 1);
                assert!(c.metrics[0].1.mean.is_nan());
            } else {
                assert!(c.status.is_ok(), "cell {i} should be healthy");
            }
        }
        assert!(result.health.degraded());
        assert_eq!(result.health.cells_ok, 3);
        assert_eq!(result.health.cells_quarantined, 1);
        // A sticky panic burns the full retry budget: MAX_ATTEMPTS fires,
        // MAX_ATTEMPTS - 1 retries.
        assert_eq!(
            result.health.cell_retries,
            ckpt_faults::MAX_ATTEMPTS as u64 - 1
        );
        assert_eq!(
            result.health.faults_injected,
            ckpt_faults::MAX_ATTEMPTS as u64
        );
    }

    #[test]
    fn transient_cell_fault_retries_to_a_byte_identical_result() {
        let sweep = SweepSpec::from_str(SMALL).unwrap();
        let clean = run_sweep(&sweep, SweepOptions { threads: 2 }).unwrap();
        // times=2 < MAX_ATTEMPTS: the third attempt succeeds.
        let policy = test_policy("budget@cell=1:times=2", false);
        let (faulted, _) =
            run_sweep_guarded(&sweep, SweepOptions { threads: 2 }, None, None, &policy).unwrap();
        assert_eq!(clean.cells, faulted.cells);
        assert!(!faulted.health.degraded());
        assert_eq!(faulted.health.cell_retries, 2);
        assert_eq!(faulted.health.faults_injected, 2);
    }

    #[test]
    fn strict_mode_fails_fast_on_the_first_injected_fault() {
        let sweep = SweepSpec::from_str(SMALL).unwrap();
        let policy = test_policy("panic@cell=1", true);
        let err = run_sweep_guarded(&sweep, SweepOptions { threads: 1 }, None, None, &policy)
            .unwrap_err();
        assert!(err.0.contains("cell 1"), "{err}");
        assert!(err.0.contains("panic"), "{err}");
    }

    #[test]
    fn default_policy_matches_legacy_entry_points_byte_for_byte() {
        let sweep = SweepSpec::from_str(SMALL).unwrap();
        let legacy = run_sweep(&sweep, SweepOptions { threads: 2 }).unwrap();
        let (guarded, report) = run_sweep_guarded(
            &sweep,
            SweepOptions { threads: 2 },
            None,
            None,
            &FaultPolicy::default(),
        )
        .unwrap();
        assert!(report.is_none());
        assert_eq!(legacy.cells, guarded.cells);
        assert!(!guarded.health.degraded());
        assert_eq!(
            guarded.health.summary(),
            "4 cells ok, 0 quarantined, 0 cell retries, 0 io retries, 0 faults injected"
        );
    }

    #[test]
    fn a_worker_panic_does_not_poison_the_caches_for_other_cells() {
        // Regression for the lock-poisoning expect()s this module used to
        // carry: a panicking cell (caught and quarantined) must leave the
        // shared caches usable — other cells sharing the same prep/run
        // key still evaluate. All four SMALL cells share one prep key, so
        // a panic in one cell's first attempts exercises exactly that.
        let sweep = SweepSpec::from_str(SMALL).unwrap();
        let policy = test_policy("panic@cell=0:times=2", false);
        let (result, _) =
            run_sweep_guarded(&sweep, SweepOptions { threads: 4 }, None, None, &policy).unwrap();
        let clean = run_sweep(&sweep, SweepOptions { threads: 4 }).unwrap();
        assert_eq!(result.cells, clean.cells, "retried run must converge");
    }

    #[test]
    fn transient_store_io_faults_retry_and_quarantined_cells_are_not_persisted() {
        let sweep = SweepSpec::from_str(SMALL).unwrap();
        let dir = std::env::temp_dir().join(format!("ckpt_exec_faults_{}", std::process::id()));
        let config = CheckpointConfig {
            dir: dir.clone(),
            resume: false,
            crash_after_cells: None,
        };
        // Two transient write errors (retried away) plus a sticky panic on
        // cell 3 (quarantined).
        let policy = test_policy(
            "io_error@write=1:kind=interrupted:times=2; panic@cell=3",
            false,
        );
        let (result, report) = run_sweep_guarded(
            &sweep,
            SweepOptions { threads: 2 },
            None,
            Some(&config),
            &policy,
        )
        .unwrap();
        assert_eq!(result.health.io_retries, 2);
        assert_eq!(result.health.cells_quarantined, 1);
        // Only the three healthy cells are persisted: a resume with the
        // fault gone re-evaluates cell 3 and lands on the clean result.
        let (store, records, _) = SweepStore::open(config.store_path(&sweep.name)).unwrap();
        drop(store);
        assert_eq!(records.len(), 3);
        assert!(records.iter().all(|r| r.index != 3));
        let resume = CheckpointConfig {
            resume: true,
            ..config.clone()
        };
        let (resumed, _) = run_sweep_guarded(
            &sweep,
            SweepOptions { threads: 2 },
            None,
            Some(&resume),
            &FaultPolicy::default(),
        )
        .unwrap();
        let clean = run_sweep(&sweep, SweepOptions { threads: 2 }).unwrap();
        assert_eq!(resumed.cells, clean.cells);
        assert!(!resumed.health.degraded());
        assert_eq!(report.unwrap().evaluated, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_runs_and_orders_cells() {
        let sweep = SweepSpec::from_str(SMALL).unwrap();
        let result = run_sweep(&sweep, SweepOptions { threads: 2 }).unwrap();
        assert_eq!(result.cells.len(), 4);
        for (i, c) in result.cells.iter().enumerate() {
            assert_eq!(c.index, i);
            let wpr = c.metrics.iter().find(|(n, _)| *n == "wpr").unwrap().1;
            assert!(wpr.count > 0, "cell {i} aggregated no jobs");
            assert!(wpr.mean > 0.0 && wpr.mean <= 1.0);
        }
    }

    #[test]
    fn run_context_drives_seed_scale_and_threads() {
        let sweep = SweepSpec::from_str(SMALL).unwrap();
        let ctx = ckpt_report::RunContext::new(ckpt_report::Scale::Quick)
            .with_seed(9)
            .with_threads(2);
        let via_ctx = run_sweep_ctx(&sweep, &ctx).unwrap();
        // The context reproduces a direct run whose spec carries the
        // context's seed and scale-derived job count.
        let mut patched = sweep.clone();
        patched.base.seed = 9;
        patched.base.jobs = ckpt_report::Scale::Quick.jobs();
        let direct = run_sweep(&patched, SweepOptions { threads: 2 }).unwrap();
        assert_eq!(via_ctx.cells, direct.cells);
        // A different context seed changes the replay.
        let other = run_sweep_ctx(&sweep, &ctx.clone().with_seed(10)).unwrap();
        assert_ne!(via_ctx.cells, other.cells);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let sweep = SweepSpec::from_str(SMALL).unwrap();
        let a = run_sweep(&sweep, SweepOptions { threads: 1 }).unwrap();
        let b = run_sweep(&sweep, SweepOptions { threads: 4 }).unwrap();
        assert_eq!(a.cells, b.cells);
    }

    #[test]
    fn prep_is_shared_across_policy_cells() {
        // All four cells differ only in policy/cost, so they share one
        // prep key (single trace generation) even with four run keys.
        let sweep = SweepSpec::from_str(SMALL).unwrap();
        let cells = sweep.cells().unwrap();
        let keys: std::collections::HashSet<String> = cells.iter().map(prep_key).collect();
        assert_eq!(keys.len(), 1);
        let run_keys: std::collections::HashSet<String> =
            cells.iter().map(|c| c.run_key()).collect();
        assert_eq!(run_keys.len(), 4);
    }

    #[test]
    fn filter_cells_share_one_replay() {
        // structure is a pure filter ⇒ both cells share a run key, and the
        // union of their job counts is the full sample.
        let spec = r#"
            [sweep]
            name = "filters"
            engine = "fast"
            seed = 11
            jobs = 200
            sample = "all"

            [axes]
            structure = ["ST", "BoT"]
        "#;
        let sweep = SweepSpec::from_str(spec).unwrap();
        let cells = sweep.cells().unwrap();
        assert_eq!(cells[0].run_key(), cells[1].run_key());
        let result = run_sweep(&sweep, SweepOptions { threads: 2 }).unwrap();
        let count = |i: usize| {
            result.cells[i]
                .metrics
                .iter()
                .find(|(n, _)| *n == "wpr")
                .unwrap()
                .1
                .count
        };
        assert_eq!(count(0) + count(1), 200);
    }

    #[test]
    fn ckpt_cost_engine_matches_blcr_model() {
        let spec = r#"
            [sweep]
            name = "fig7ish"
            engine = "ckpt-cost"

            [axes]
            device = ["ramdisk", "nfs"]
            mem_mb = [10, 240]
            n_checkpoints = { from = 1, to = 5, steps = 5 }
        "#;
        let sweep = SweepSpec::from_str(spec).unwrap();
        assert_eq!(sweep.grid_size(), 20);
        let result = run_sweep(&sweep, SweepOptions { threads: 3 }).unwrap();
        let blcr = BlcrModel;
        for cell in &result.cells {
            let scen = sweep.cell(cell.index).unwrap();
            let expect = blcr.checkpoint_cost(scen.device, scen.mem_mb) * scen.n_checkpoints as f64;
            let got = cell
                .metrics
                .iter()
                .find(|(n, _)| *n == "total_cost_s")
                .unwrap()
                .1;
            assert_eq!(got.mean, expect, "cell {}", cell.index);
        }
    }

    #[test]
    fn contention_engine_shows_nfs_congestion() {
        let spec = r#"
            [sweep]
            name = "table2ish"
            engine = "contention"
            seed = 20130217
            mem_mb = 160
            reps = 25

            [axes]
            device = ["ramdisk", "nfs"]
            degree = { from = 1, to = 5, steps = 5 }
        "#;
        let sweep = SweepSpec::from_str(spec).unwrap();
        let result = run_sweep(&sweep, SweepOptions::default()).unwrap();
        let mean = |i: usize| {
            result.cells[i]
                .metrics
                .iter()
                .find(|(n, _)| *n == "duration_s")
                .unwrap()
                .1
                .mean
        };
        // Cells 0..5 are ramdisk X=1..5 (flat); 5..10 are NFS (climbing).
        assert!(mean(4) < 2.0 * mean(0), "ramdisk should stay flat");
        assert!(mean(9) > 3.0 * mean(5), "NFS should congest with degree");
        // Thread invariance for RNG-using engines specifically.
        let again = run_sweep(&sweep, SweepOptions { threads: 7 }).unwrap();
        assert_eq!(result.cells, again.cells);
    }

    const HAZARD: &str = r#"
        [sweep]
        name = "hazard"
        engine = "fast"
        seed = 9
        jobs = 150

        [axes]
        failure_model = ["exponential", "weibull", "pareto", "trace"]
        policy = ["formula3", "young"]
    "#;

    #[test]
    fn failure_model_axis_is_thread_invariant_and_distinct() {
        let sweep = SweepSpec::from_str(HAZARD).unwrap();
        let a = run_sweep(&sweep, SweepOptions { threads: 1 }).unwrap();
        let b = run_sweep(&sweep, SweepOptions { threads: 4 }).unwrap();
        assert_eq!(a.cells, b.cells);
        // Each model produces a genuinely different replay: the formula3
        // wall-clock must differ across models.
        let wall = |i: usize| {
            a.cells[i]
                .metrics
                .iter()
                .find(|(n, _)| *n == "wall_s")
                .unwrap()
                .1
                .mean
        };
        let walls: Vec<f64> = (0..4).map(|m| wall(2 * m)).collect();
        for i in 1..walls.len() {
            assert_ne!(walls[0], walls[i], "model {i} replayed the default plan");
        }
    }

    #[test]
    fn exponential_failure_model_cells_match_the_legacy_sweep() {
        // The acceptance contract: an explicit failure_model =
        // "exponential" axis value changes nothing — metrics equal the
        // same sweep with no failure_model key at all.
        let with_axis = SweepSpec::from_str(
            r#"
            [sweep]
            name = "small"
            engine = "fast"
            seed = 9
            jobs = 150
            failure_model = "exponential"

            [axes]
            policy = ["formula3", "none"]
        "#,
        )
        .unwrap();
        let legacy = SweepSpec::from_str(
            r#"
            [sweep]
            name = "small"
            engine = "fast"
            seed = 9
            jobs = 150

            [axes]
            policy = ["formula3", "none"]
        "#,
        )
        .unwrap();
        let a = run_sweep(&with_axis, SweepOptions::default()).unwrap();
        let b = run_sweep(&legacy, SweepOptions::default()).unwrap();
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.metrics, cb.metrics);
        }
    }

    #[test]
    fn cluster_engine_threads_failure_model_into_host_failures() {
        let spec = r#"
            [sweep]
            name = "haz_cluster"
            engine = "cluster"
            seed = 11
            jobs = 60

            [cluster]
            host_mtbf_s = 1800

            [axes]
            failure_model = ["exponential", "pareto"]
        "#;
        let sweep = SweepSpec::from_str(spec).unwrap();
        let result = run_sweep(&sweep, SweepOptions { threads: 2 }).unwrap();
        assert_eq!(result.cells.len(), 2);
        let makespan = |i: usize| {
            result.cells[i]
                .metrics
                .iter()
                .find(|(n, _)| *n == "makespan_s")
                .unwrap()
                .1
                .mean
        };
        // Different hazard ⇒ different host-failure stream ⇒ different run.
        assert_ne!(makespan(0), makespan(1));
        let again = run_sweep(&sweep, SweepOptions { threads: 7 }).unwrap();
        assert_eq!(result.cells, again.cells);
    }

    #[test]
    fn failure_model_axis_reaches_replayed_trace_files() {
        // A failure_model axis over a trace_file scenario must change the
        // replay (kill plans are drawn at run time), not silently produce
        // a grid of identical cells.
        let trace = ckpt_trace::gen::generate(&ckpt_trace::spec::WorkloadSpec::google_like(80), 41)
            .expect("valid workload spec");
        let path = std::env::temp_dir().join(format!(
            "ckpt_scenario_test_{}_axis_trace.csv",
            std::process::id()
        ));
        export::write_csv(&trace, &path).unwrap();
        let spec = format!(
            r#"
            [sweep]
            name = "traced"
            engine = "fast"
            trace = "{}"
            sample = "all"

            [axes]
            failure_model = ["exponential", "pareto"]
        "#,
            path.display()
        );
        let sweep = SweepSpec::from_str(&spec).unwrap();
        let result = run_sweep(&sweep, SweepOptions::default()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_ne!(result.cells[0].metrics, result.cells[1].metrics);
    }

    #[test]
    fn bad_workload_values_error_instead_of_panicking() {
        // length_spread <= 1 used to panic inside generate(); it must now
        // surface as a cell error through the sweep.
        let sweep = SweepSpec::from_str(
            r#"
            [sweep]
            name = "badgen"
            engine = "fast"
            jobs = 10

            [workload]
            length_spread = 0.5
        "#,
        )
        .unwrap();
        let err = run_sweep(&sweep, SweepOptions::default()).unwrap_err();
        assert!(err.0.contains("length_spread"), "{err}");
    }

    #[test]
    fn streaming_metrics_match_full_mode_where_defined() {
        // Streaming cells fold the same replay the full-record cells
        // materialize: count/mean/min/max must agree exactly; p50/p99
        // come from the fold's quantile sketch and must land within its
        // documented relative error bound of the full-record percentiles.
        let full = SweepSpec::from_str(
            r#"
            [sweep]
            name = "m_full"
            engine = "fast"
            seed = 9
            jobs = 150
            sample = "all"

            [axes]
            policy = ["formula3", "none"]
        "#,
        )
        .unwrap();
        let streaming = SweepSpec::from_str(
            r#"
            [sweep]
            name = "m_stream"
            engine = "fast"
            seed = 9
            jobs = 150
            sample = "all"
            metrics = "streaming"

            [axes]
            policy = ["formula3", "none"]
        "#,
        )
        .unwrap();
        let a = run_sweep(&full, SweepOptions { threads: 1 }).unwrap();
        let b = run_sweep(&streaming, SweepOptions { threads: 1 }).unwrap();
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.metrics.len(), cb.metrics.len());
            for ((name_a, ma), (name_b, mb)) in ca.metrics.iter().zip(&cb.metrics) {
                assert_eq!(name_a, name_b);
                assert_eq!(ma.count, mb.count, "{name_a}");
                // Min/max are order-free and match exactly; the mean sums
                // in job order (the full path sums sorted values), so it
                // agrees to float-association noise.
                assert_eq!(ma.min.to_bits(), mb.min.to_bits(), "{name_a}");
                assert_eq!(ma.max.to_bits(), mb.max.to_bits(), "{name_a}");
                let tol = 1e-12 * ma.mean.abs().max(1.0);
                assert!((ma.mean - mb.mean).abs() <= tol, "{name_a}");
                // Sketch percentiles: populated, within the documented
                // relative error bound of the exact nearest-rank values.
                let bound = ckpt_stats::QuantileSketch::new().relative_error_bound();
                for (exact, sketched) in [(ma.p50, mb.p50), (ma.p99, mb.p99)] {
                    assert!(!sketched.is_nan(), "{name_a}: sketch percentile is NaN");
                    assert!(
                        (sketched - exact).abs() <= bound * exact.abs() + 1e-9,
                        "{name_a}: sketched {sketched} vs exact {exact}"
                    );
                }
            }
        }
        // And the mode is thread-invariant (fixed fold blocks, mergeable
        // sketches): byte-identical cells at any thread count.
        let b4 = run_sweep(&streaming, SweepOptions { threads: 4 }).unwrap();
        assert_eq!(b.cells, b4.cells);
    }

    #[test]
    fn streaming_metrics_reject_filters_and_analytic_by_name() {
        let filtered = SweepSpec::from_str(
            r#"
            [sweep]
            name = "m_bad"
            engine = "fast"
            jobs = 50
            metrics = "streaming"

            [axes]
            structure = ["ST", "BoT"]
        "#,
        )
        .unwrap();
        let err = run_sweep(&filtered, SweepOptions::default()).unwrap_err();
        assert!(
            err.0.contains("sample") && err.0.contains("structure"),
            "{err}"
        );

        // Cluster + streaming is now a supported combination: the DES job
        // records fold into the same sketch-backed summaries.
        let cluster = SweepSpec::from_str(
            r#"
            [sweep]
            name = "m_cluster"
            engine = "cluster"
            jobs = 30
            sample = "all"
            metrics = "streaming"
        "#,
        )
        .unwrap();
        let result = run_sweep(&cluster, SweepOptions::default()).unwrap();
        let (_, wpr) = result.cells[0]
            .metrics
            .iter()
            .find(|(name, _)| *name == "wpr")
            .unwrap();
        assert!(wpr.count > 0 && !wpr.p50.is_nan() && !wpr.p99.is_nan());
        assert!(result.cells[0]
            .metrics
            .iter()
            .any(|(name, _)| *name == "queue_wait_s"));

        // Analytic engines have no replay to stream and are rejected.
        let analytic = SweepSpec::from_str(
            r#"
            [sweep]
            name = "m_analytic"
            engine = "ckpt-cost"
            metrics = "streaming"
        "#,
        )
        .unwrap();
        let err = run_sweep(&analytic, SweepOptions::default()).unwrap_err();
        assert!(err.0.contains("replay-engine"), "{err}");
    }

    #[test]
    fn cluster_cells_draw_kill_plans_from_the_shared_arena() {
        // Every cluster cell replays through the prep slot's plan arena:
        // one sampling pass per (trace, failure model), shared by every
        // policy cell. Observable as all-hit arena counters satisfying
        // `arena_hits + arena_misses == plan_lookups`.
        let sweep = SweepSpec::from_str(
            r#"
            [sweep]
            name = "cluster_arena"
            engine = "cluster"
            seed = 11
            jobs = 40

            [axes]
            policy = ["formula3", "young", "none"]
        "#,
        )
        .unwrap();
        let telemetry = Telemetry::new();
        let result =
            run_sweep_telemetry(&sweep, SweepOptions { threads: 2 }, Some(&telemetry)).unwrap();
        assert_eq!(result.cells.len(), 3);
        let snap = telemetry.counters.snapshot();
        snap.verify_invariants(true).unwrap();
        let lookups = snap.get(Counter::PlanLookups);
        assert!(lookups > 0, "cluster cells must register plan lookups");
        assert_eq!(snap.get(Counter::ArenaHits), lookups);
        assert_eq!(snap.get(Counter::ArenaMisses), 0);
    }

    use ckpt_obs::Observer;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ckpt_exec_{}_{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_full_resume_skips_everything() {
        let sweep = SweepSpec::from_str(SMALL).unwrap();
        let plain = run_sweep(&sweep, SweepOptions { threads: 2 }).unwrap();

        let dir = tmp_dir("fresh");
        let cfg = CheckpointConfig {
            dir: dir.clone(),
            resume: false,
            crash_after_cells: None,
        };
        let (fresh, report) =
            run_sweep_checkpointed(&sweep, SweepOptions { threads: 2 }, None, &cfg).unwrap();
        assert_eq!(fresh.cells, plain.cells);
        assert_eq!(report.loaded, 0);
        assert_eq!(report.evaluated, 4);

        // Resuming a completed store evaluates nothing and reproduces the
        // run bit-exactly, even at a different thread count.
        let telemetry = Telemetry::new();
        let resume = CheckpointConfig {
            resume: true,
            ..cfg
        };
        let (resumed, report) = run_sweep_checkpointed(
            &sweep,
            SweepOptions { threads: 1 },
            Some(&telemetry),
            &resume,
        )
        .unwrap();
        assert_eq!(resumed.cells, plain.cells);
        assert_eq!(report.loaded, 4);
        assert_eq!(report.evaluated, 0);
        let snap = telemetry.counters.snapshot();
        assert_eq!(snap.get(Counter::CellsSkipped), 4);
        assert_eq!(snap.get(Counter::CellsEvaluated), 0);
        assert_eq!(snap.get(Counter::CkptRecordsWritten), 0);
        snap.verify_sweep_invariants(4).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_store_resumes_only_missing_cells_with_identical_results() {
        let sweep = SweepSpec::from_str(SMALL).unwrap();
        let plain = run_sweep(&sweep, SweepOptions { threads: 2 }).unwrap();

        // Hand-build a store holding only cells {0, 2}, as a killed run
        // would have left it.
        let dir = tmp_dir("partial");
        let cfg = CheckpointConfig {
            dir: dir.clone(),
            resume: true,
            crash_after_cells: None,
        };
        let cells = sweep.cells().unwrap();
        let header = StoreHeader {
            spec_digest: ckpt::sweep_digest(&sweep),
            seed: sweep.base.seed,
            scale: sweep.base.jobs as u64,
            grid_size: 4,
        };
        let path = cfg.store_path(&sweep.name);
        let mut store = SweepStore::create(&path, header).unwrap();
        for &i in &[0usize, 2] {
            store
                .append(&CellRecord {
                    index: i as u64,
                    key_digest: ckpt::cell_key_digest(&cells[i].run_key(), &plain.cells[i].params),
                    payload: ckpt::encode_cell(&plain.cells[i]),
                })
                .unwrap();
        }
        drop(store);

        let telemetry = Telemetry::new();
        let (resumed, report) =
            run_sweep_checkpointed(&sweep, SweepOptions { threads: 4 }, Some(&telemetry), &cfg)
                .unwrap();
        assert_eq!(resumed.cells, plain.cells);
        assert_eq!(report.loaded, 2);
        assert_eq!(report.evaluated, 2);
        let snap = telemetry.counters.snapshot();
        assert_eq!(snap.get(Counter::CellsSkipped), 2);
        assert_eq!(snap.get(Counter::CellsEvaluated), 2);
        assert_eq!(snap.get(Counter::CellsResumed), 2);
        assert_eq!(snap.get(Counter::CkptRecordsWritten), 2);
        snap.verify_sweep_invariants(4).unwrap();

        // The store is now complete: a further resume loads all four.
        let (_, report) =
            run_sweep_checkpointed(&sweep, SweepOptions::default(), None, &cfg).unwrap();
        assert_eq!(report.loaded, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_against_changed_spec_is_rejected_by_name() {
        let sweep = SweepSpec::from_str(SMALL).unwrap();
        let dir = tmp_dir("mismatch");
        let cfg = CheckpointConfig {
            dir: dir.clone(),
            resume: false,
            crash_after_cells: None,
        };
        run_sweep_checkpointed(&sweep, SweepOptions::default(), None, &cfg).unwrap();

        // Same name, different seed ⇒ different spec digest: the resume
        // must refuse rather than merge incompatible cells.
        let mut other = sweep.clone();
        other.base.seed = 1234;
        let resume = CheckpointConfig {
            resume: true,
            ..cfg.clone()
        };
        let err =
            run_sweep_checkpointed(&other, SweepOptions::default(), None, &resume).unwrap_err();
        assert!(err.0.contains("spec digest"), "{err}");

        // Without --resume the same store is simply overwritten.
        let (result, report) =
            run_sweep_checkpointed(&other, SweepOptions::default(), None, &cfg).unwrap();
        assert_eq!(report.loaded, 0);
        assert_eq!(result.cells.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_without_a_store_starts_fresh() {
        let sweep = SweepSpec::from_str(SMALL).unwrap();
        let dir = tmp_dir("freshstart");
        let cfg = CheckpointConfig {
            dir: dir.clone(),
            resume: true,
            crash_after_cells: None,
        };
        let telemetry = Telemetry::new();
        let (result, report) =
            run_sweep_checkpointed(&sweep, SweepOptions::default(), Some(&telemetry), &cfg)
                .unwrap();
        assert!(report.fresh_start);
        assert_eq!(report.loaded, 0);
        assert_eq!(result.cells.len(), 4);
        // A fresh start is not a resume: nothing counts as resumed.
        let snap = telemetry.counters.snapshot();
        assert_eq!(snap.get(Counter::CellsResumed), 0);
        assert_eq!(snap.get(Counter::CkptRecordsWritten), 4);
        snap.verify_sweep_invariants(4).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn policy_ordering_matches_headline() {
        // Formula (3) should beat no-checkpointing on the failure-prone
        // sample at default cost — the sweep reproduces the paper's
        // qualitative result end-to-end.
        let sweep = SweepSpec::from_str(
            r#"
            [sweep]
            name = "ordering"
            engine = "fast"
            seed = 15
            jobs = 400

            [axes]
            policy = ["formula3", "none"]
        "#,
        )
        .unwrap();
        let result = run_sweep(&sweep, SweepOptions::default()).unwrap();
        let wpr = |i: usize| {
            result.cells[i]
                .metrics
                .iter()
                .find(|(n, _)| *n == "wpr")
                .unwrap()
                .1
                .mean
        };
        assert!(wpr(0) > wpr(1), "formula3 {} vs none {}", wpr(0), wpr(1));
    }
}
