//! Checkpointing the sweep itself: the glue between the executor and the
//! [`ckpt_store`] append-only store.
//!
//! The store is deliberately payload-agnostic, so this module owns the
//! sweep-shaped half of the contract:
//!
//! * a binary codec for [`CellResult`] — strings length-prefixed, floats
//!   as IEEE bit patterns (NaN-exact, so loaded cells export the same
//!   bytes as freshly evaluated ones), metric names re-interned against
//!   the static catalog on load;
//! * the identity digests: [`sweep_digest`] over everything that shapes
//!   output bytes (name, base scenario, axes — *not* the thread count,
//!   which never changes results), and a per-record [`cell_key_digest`]
//!   over the cell's run key and rendered params;
//! * [`CheckpointConfig`] / [`ResumeReport`] — what the caller asks for
//!   and what the executor did about it.

use crate::agg::MetricSummary;
use crate::exec::CellResult;
use crate::sweep::SweepSpec;
use ckpt_store::fnv1a;
use std::path::{Path, PathBuf};

/// Every metric name a cell can carry, across all engines. Loading a
/// record re-interns names against this catalog (cells hold
/// `&'static str`); an unknown name means the store was written by a
/// different version of the code and is rejected by name.
const METRIC_NAMES: &[&str] = &[
    "wpr",
    "wall_s",
    "ckpt_overhead_s",
    "rollback_s",
    "restart_s",
    "failures",
    "checkpoints",
    "queue_wait_s",
    "makespan_s",
    "events",
    "unit_cost_s",
    "total_cost_s",
    "duration_s",
];

/// What `sweep --checkpoint-dir` / `--resume` asked the executor to do.
#[derive(Debug, Clone, Default)]
pub struct CheckpointConfig {
    /// Directory holding the store (one file per sweep name).
    pub dir: PathBuf,
    /// Reuse an existing store: validate its header, load its cells, and
    /// evaluate only the missing ones. Without this, an existing store is
    /// truncated and the sweep starts fresh.
    pub resume: bool,
    /// Fault injection for kill-and-resume tests: abort the process (exit
    /// code [`CRASH_EXIT_CODE`]) once this many records have been
    /// persisted *by this run*. Wired to the `CKPT_CRASH_AFTER_CELLS` env
    /// knob in the CLI; never set in production paths.
    pub crash_after_cells: Option<u64>,
}

/// Exit code of a [`CheckpointConfig::crash_after_cells`] injected crash —
/// distinctive on purpose, so tests can tell the injected kill from a
/// genuine panic (101) or success (0).
pub const CRASH_EXIT_CODE: i32 = 86;

impl CheckpointConfig {
    /// The store file for a sweep: `<dir>/<name>.sweepckpt`. Sweep names
    /// are validated to `[A-Za-z0-9._-]` at parse time, so the join cannot
    /// escape the directory.
    pub fn store_path(&self, sweep_name: &str) -> PathBuf {
        self.dir.join(format!("{sweep_name}.sweepckpt"))
    }
}

/// What a checkpointed run did: how much came from the store, how much was
/// evaluated, and whether recovery touched the file.
#[derive(Debug, Clone, Default)]
pub struct ResumeReport {
    /// Cells loaded from the store (skipped, not evaluated).
    pub loaded: usize,
    /// Cells evaluated (and persisted) by this run.
    pub evaluated: usize,
    /// The store file in use.
    pub store_path: PathBuf,
    /// Corrupt-tail recovery note from [`ckpt_store::SweepStore::open`],
    /// if the previous run died mid-append.
    pub recovered: Option<String>,
    /// `--resume` was asked for but no store existed yet — the run started
    /// fresh (the friendly behavior for `until sweep --resume; do :; done`
    /// restart loops).
    pub fresh_start: bool,
}

/// Digest of everything that shapes a sweep's output bytes: name, base
/// scenario, and axes. Thread count is excluded — results are
/// thread-invariant by construction, and a resume at a different
/// `--threads` must be allowed to fill in the same store.
pub fn sweep_digest(sweep: &SweepSpec) -> u64 {
    fnv1a(format!("{}\n{:?}\n{:?}", sweep.name, sweep.base, sweep.axes).as_bytes())
}

/// Per-record identity: the cell's run key (simulation inputs) plus its
/// rendered axis params (which also carry filter axes that the run key
/// deliberately omits). Checked on load so a record can never be replayed
/// into the wrong cell even across hash-colliding spec edits.
pub fn cell_key_digest(run_key: &str, params: &[(String, String)]) -> u64 {
    let mut buf = Vec::with_capacity(run_key.len() + 32 * params.len());
    buf.extend_from_slice(run_key.as_bytes());
    for (k, v) in params {
        buf.push(0);
        buf.extend_from_slice(k.as_bytes());
        buf.push(1);
        buf.extend_from_slice(v.as_bytes());
    }
    fnv1a(&buf)
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn push_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Encode a cell's params and metrics as a store payload (the cell index
/// rides in the record frame, not the payload).
pub fn encode_cell(cell: &CellResult) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + 32 * cell.params.len() + 56 * cell.metrics.len());
    buf.extend_from_slice(&(cell.params.len() as u32).to_le_bytes());
    for (k, v) in &cell.params {
        push_str(&mut buf, k);
        push_str(&mut buf, v);
    }
    buf.extend_from_slice(&(cell.metrics.len() as u32).to_le_bytes());
    for (name, m) in &cell.metrics {
        push_str(&mut buf, name);
        buf.extend_from_slice(&(m.count as u64).to_le_bytes());
        for v in [m.mean, m.p50, m.p99, m.min, m.max] {
            push_f64(&mut buf, v);
        }
    }
    buf
}

/// A bounds-checked cursor over a payload; every read error names the
/// store as the culprit (payloads are checksummed, so a short read here
/// means a version skew, not disk corruption).
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                format!(
                    "cell payload too short (need {n} bytes at offset {}, have {})",
                    self.at,
                    self.buf.len()
                )
            })?;
        let out = &self.buf[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "cell payload string not UTF-8".into())
    }
}

/// Decode a store payload back into a [`CellResult`] (index supplied from
/// the record frame). Metric names are re-interned against the static
/// catalog; unknown names mean the store predates or postdates this build.
pub fn decode_cell(index: usize, payload: &[u8]) -> Result<CellResult, String> {
    let mut cur = Cursor {
        buf: payload,
        at: 0,
    };
    let n_params = cur.u32()? as usize;
    let mut params = Vec::with_capacity(n_params);
    for _ in 0..n_params {
        let k = cur.string()?;
        let v = cur.string()?;
        params.push((k, v));
    }
    let n_metrics = cur.u32()? as usize;
    let mut metrics = Vec::with_capacity(n_metrics);
    for _ in 0..n_metrics {
        let name = cur.string()?;
        let interned = METRIC_NAMES
            .iter()
            .find(|&&n| n == name)
            .copied()
            .ok_or_else(|| {
                format!(
                    "unknown metric {name:?} in checkpoint store \
                     (written by a different version of this tool?)"
                )
            })?;
        let count = cur.u64()? as usize;
        let summary = MetricSummary {
            count,
            mean: cur.f64()?,
            p50: cur.f64()?,
            p99: cur.f64()?,
            min: cur.f64()?,
            max: cur.f64()?,
        };
        metrics.push((interned, summary));
    }
    if cur.at != payload.len() {
        return Err(format!(
            "cell payload has {} trailing bytes (version skew?)",
            payload.len() - cur.at
        ));
    }
    // Only successfully evaluated cells are ever persisted (quarantined
    // cells must be re-evaluated on resume), so a decoded cell is Ok by
    // construction.
    Ok(CellResult {
        index,
        params,
        metrics,
        status: crate::exec::CellStatus::Ok,
    })
}

/// Render a [`ResumeReport`] as the one-line stderr notes the CLI prints.
pub fn report_lines(report: &ResumeReport, out: &mut Vec<String>) {
    if let Some(note) = &report.recovered {
        out.push(note.clone());
    }
    if report.fresh_start {
        out.push(format!(
            "resume: no store at {}, starting fresh",
            report.store_path.display()
        ));
    }
    if report.loaded > 0 {
        out.push(format!(
            "resume: loaded {} cell{} from {}, evaluating {} missing",
            report.loaded,
            if report.loaded == 1 { "" } else { "s" },
            report.store_path.display(),
            report.evaluated,
        ));
    }
}

/// `path` exists as a file (the resume-or-fresh probe).
pub fn store_exists(path: &Path) -> bool {
    path.is_file()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> CellResult {
        CellResult {
            index: 7,
            params: vec![
                ("policy".into(), "formula3".into()),
                ("ckpt_cost_scale".into(), "0.5".into()),
            ],
            metrics: vec![
                (
                    "wpr",
                    MetricSummary {
                        count: 123,
                        mean: 0.87,
                        p50: 0.9,
                        p99: 0.99,
                        min: 0.1,
                        max: 1.0,
                    },
                ),
                (
                    "wall_s",
                    MetricSummary {
                        count: 0,
                        mean: f64::NAN,
                        p50: f64::NAN,
                        p99: f64::NAN,
                        min: f64::NAN,
                        max: f64::NAN,
                    },
                ),
            ],
            status: crate::exec::CellStatus::Ok,
        }
    }

    #[test]
    fn cell_roundtrips_including_nan_bits() {
        let original = cell();
        let decoded = decode_cell(7, &encode_cell(&original)).unwrap();
        assert_eq!(decoded.index, original.index);
        assert_eq!(decoded.params, original.params);
        assert_eq!(decoded.metrics.len(), original.metrics.len());
        for ((na, ma), (nb, mb)) in original.metrics.iter().zip(&decoded.metrics) {
            assert_eq!(na, nb);
            assert_eq!(ma.count, mb.count);
            for (a, b) in [
                (ma.mean, mb.mean),
                (ma.p50, mb.p50),
                (ma.p99, mb.p99),
                (ma.min, mb.min),
                (ma.max, mb.max),
            ] {
                assert_eq!(a.to_bits(), b.to_bits(), "{na}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn unknown_metric_names_are_rejected() {
        let mut rogue = cell();
        rogue.metrics = vec![("wpr", rogue.metrics[0].1)];
        let mut bytes = encode_cell(&rogue);
        // Rewrite the metric name in place: same length, unknown name.
        let at = bytes
            .windows(3)
            .position(|w| w == b"wpr")
            .expect("name present");
        bytes[at..at + 3].copy_from_slice(b"xyz");
        let err = decode_cell(0, &bytes).unwrap_err();
        assert!(
            err.contains("xyz") && err.contains("different version"),
            "{err}"
        );
    }

    #[test]
    fn short_and_oversized_payloads_are_rejected() {
        let bytes = encode_cell(&cell());
        assert!(decode_cell(0, &bytes[..bytes.len() - 1]).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        let err = decode_cell(0, &padded).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }

    #[test]
    fn digests_separate_cells_and_specs() {
        let params_a = vec![("policy".to_string(), "formula3".to_string())];
        let params_b = vec![("policy".to_string(), "young".to_string())];
        assert_ne!(
            cell_key_digest("samekey", &params_a),
            cell_key_digest("samekey", &params_b)
        );
        assert_eq!(
            cell_key_digest("samekey", &params_a),
            cell_key_digest("samekey", &params_a)
        );

        let a = SweepSpec::from_str("[sweep]\nname = \"x\"\nseed = 1\n").unwrap();
        let b = SweepSpec::from_str("[sweep]\nname = \"x\"\nseed = 2\n").unwrap();
        assert_ne!(sweep_digest(&a), sweep_digest(&b));
        // Threads are execution shape, not identity: same digest.
        let c = SweepSpec::from_str("[sweep]\nname = \"x\"\nseed = 1\nthreads = 7\n").unwrap();
        assert_eq!(sweep_digest(&a), sweep_digest(&c));
    }
}
