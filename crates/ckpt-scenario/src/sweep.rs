//! [`SweepSpec`] — a base [`ScenarioSpec`] plus sweep axes, expanded into
//! the full cartesian grid of scenarios.
//!
//! Axes come in two shapes:
//!
//! * explicit lists — `policy = ["formula3", "young", "daly", "none"]`;
//! * ranges — `ckpt_cost_scale = { from = 0.25, to = 8, steps = 6 }`,
//!   linearly spaced (or geometrically with `log = true`).
//!
//! Expansion order is row-major over the axes in file order: the last axis
//! varies fastest. Cell `i` therefore has a stable meaning independent of
//! thread count — the executor keys its per-cell RNG streams off `i`.

use crate::parse::{self, Value};
use crate::spec::ScenarioSpec;

/// One sweep axis: a scenario key and the values it takes.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// The scenario key this axis assigns (any key
    /// [`ScenarioSpec::apply`] accepts).
    pub param: String,
    /// The values, in sweep order.
    pub values: Vec<Value>,
}

/// A declarative sweep: base scenario × axes.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Sweep name (output files derive from it).
    pub name: String,
    /// The base scenario every cell starts from.
    pub base: ScenarioSpec,
    /// Sweep axes, slowest-varying first.
    pub axes: Vec<Axis>,
    /// Default worker threads (0 ⇒ one per core); the CLI can override.
    pub threads: usize,
}

/// Errors building or expanding a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepError(pub String);

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep spec error: {}", self.0)
    }
}

impl std::error::Error for SweepError {}

fn expand_range(table: &std::collections::BTreeMap<String, Value>) -> Result<Vec<Value>, String> {
    let get = |k: &str| -> Result<f64, String> {
        table
            .get(k)
            .and_then(Value::as_num)
            .ok_or_else(|| format!("range axis needs numeric {k:?}"))
    };
    let from = get("from")?;
    let to = get("to")?;
    let steps_raw = get("steps")?;
    if steps_raw < 0.0 || steps_raw.fract() != 0.0 {
        return Err(format!(
            "steps must be a non-negative integer, got {steps_raw}"
        ));
    }
    let steps = steps_raw as usize;
    let log = table.get("log").and_then(Value::as_bool).unwrap_or(false);
    for k in table.keys() {
        if !matches!(k.as_str(), "from" | "to" | "steps" | "log") {
            return Err(format!(
                "unknown range key {k:?} (expected from/to/steps/log)"
            ));
        }
    }
    if steps == 0 {
        return Err("range axis needs steps >= 1".into());
    }
    if steps == 1 {
        // A one-step range silently dropping `to` would masquerade as a
        // completed sweep; make the collapse explicit.
        if from != to {
            return Err(format!(
                "steps = 1 would discard to = {to} (use steps >= 2, or from == to)"
            ));
        }
        return Ok(vec![Value::Num(from)]);
    }
    if log && (from <= 0.0 || to <= 0.0) {
        return Err("log range axis needs positive from/to".into());
    }
    let mut out = Vec::with_capacity(steps);
    for i in 0..steps {
        let t = i as f64 / (steps - 1) as f64;
        let v = if log {
            (from.ln() + t * (to.ln() - from.ln())).exp()
        } else {
            from + t * (to - from)
        };
        out.push(Value::Num(snap(v)));
    }
    Ok(out)
}

/// Round to 12 significant digits, so interpolated axis values render as
/// the numbers the user wrote (`2` rather than `1.9999999999999998`)
/// without perturbing anything beyond float noise.
fn snap(v: f64) -> f64 {
    // Outside this range 10^(11 - mag) itself overflows/underflows,
    // turning the value into NaN; leave such extremes untouched.
    if v == 0.0 || !v.is_finite() || v.abs() < 1e-200 || v.abs() > 1e200 {
        return v;
    }
    let mag = v.abs().log10().floor();
    let scale = 10f64.powf(11.0 - mag);
    (v * scale).round() / scale
}

impl SweepSpec {
    /// The spec with a [`ckpt_report::RunContext`] applied: the context's
    /// seed replaces the base seed and its scale sets the base job count
    /// (per-cell axes still win; analytic engines ignore jobs).
    /// [`crate::exec::run_sweep_ctx`] applies this itself, and the
    /// returned [`crate::exec::SweepResult`] records the effective seed,
    /// so export metadata stays truthful without extra caller work.
    pub fn contextualized(&self, ctx: &ckpt_report::RunContext) -> SweepSpec {
        let mut spec = self.clone();
        spec.base.seed = ctx.seed;
        spec.base.jobs = ctx.scale.jobs();
        if let Some(shards) = ctx.shards {
            spec.base.shards = shards;
        }
        spec
    }

    /// Parse a sweep from spec text (the TOML subset of [`crate::parse`]).
    ///
    /// Layout: `[sweep]` (name/engine/seed/jobs/threads), `[scenario]`,
    /// `[workload]` and `[cluster]` (base-scenario fields), `[axes]`.
    /// (Inherent rather than `std::str::FromStr` so call sites read as
    /// spec vocabulary, like the CLI's parsers.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(input: &str) -> Result<Self, SweepError> {
        let doc = parse::parse(input).map_err(|e| SweepError(e.to_string()))?;

        let name = doc
            .get("sweep", "name")
            .and_then(Value::as_str)
            .unwrap_or("sweep")
            .to_string();
        // The name becomes output file names; separators would escape the
        // --out directory (or fail after the whole sweep has run).
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
            || name.contains("..")
        {
            return Err(SweepError(format!(
                "sweep name {name:?} must be non-empty [A-Za-z0-9._-] without \"..\" \
                 (it names the output files)"
            )));
        }
        let mut base = ScenarioSpec::new(name.clone());
        let threads = match doc.get("sweep", "threads").and_then(Value::as_num) {
            None => 0,
            Some(v) if v >= 0.0 && v.fract() == 0.0 => v as usize,
            Some(v) => {
                return Err(SweepError(format!(
                    "key \"threads\": expected a non-negative integer, got {v}"
                )))
            }
        };

        // `[sweep]` carries run-wide keys; everything except the reserved
        // ones is treated as a base-scenario assignment for convenience.
        // The parser already rejects duplicates within a section; track
        // keys across the base-scenario sections too, so `[sweep] jobs`
        // silently overridden by a later `[scenario] jobs` cannot happen.
        let mut seen: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
        for (section, keys) in doc.sections() {
            if matches!(
                section.as_str(),
                "sweep" | "scenario" | "workload" | "cluster"
            ) {
                for (k, _) in keys {
                    if let Some(prev) = seen.insert(k.as_str(), section.as_str()) {
                        return Err(SweepError(format!(
                            "key {k:?} set in both [{prev}] and [{section}]"
                        )));
                    }
                }
            }
            match section.as_str() {
                // Keys before any [section] header have no home — dropping
                // them silently would run the sweep with defaults the user
                // thinks they overrode.
                "" => {
                    if let Some((key, _)) = keys.first() {
                        return Err(SweepError(format!(
                            "key {key:?} appears before any section header; put it under [sweep]"
                        )));
                    }
                }
                "axes" => continue,
                "sweep" => {
                    for (k, v) in keys {
                        if matches!(k.as_str(), "name" | "threads") {
                            continue;
                        }
                        base.apply(k, v)
                            .map_err(|e| SweepError(format!("[sweep] {e}")))?;
                    }
                }
                "scenario" | "workload" | "cluster" => {
                    for (k, v) in keys {
                        base.apply(k, v)
                            .map_err(|e| SweepError(format!("[{section}] {e}")))?;
                    }
                }
                other => {
                    return Err(SweepError(format!(
                        "unknown section [{other}] (expected sweep/scenario/workload/cluster/axes)"
                    )))
                }
            }
        }

        let mut axes = Vec::new();
        if let Some(axis_keys) = doc.section("axes") {
            for (param, v) in axis_keys {
                let values = match v {
                    Value::Array(xs) => {
                        if xs.is_empty() {
                            return Err(SweepError(format!("axis {param:?} is empty")));
                        }
                        xs.clone()
                    }
                    Value::Table(t) => {
                        expand_range(t).map_err(|e| SweepError(format!("axis {param:?}: {e}")))?
                    }
                    scalar => vec![scalar.clone()],
                };
                // Validate every axis value against the base scenario now, so
                // errors surface at parse time rather than mid-sweep.
                for value in &values {
                    let mut probe = base.clone();
                    probe
                        .apply(param, value)
                        .map_err(|e| SweepError(format!("axis {param:?}: {e}")))?;
                }
                axes.push(Axis {
                    param: param.clone(),
                    values,
                });
            }
        }

        Ok(SweepSpec {
            name,
            base,
            axes,
            threads,
        })
    }

    /// Total number of grid cells: the product of the axis lengths.
    pub fn grid_size(&self) -> usize {
        self.axes
            .iter()
            .map(|a| a.values.len())
            .product::<usize>()
            .max(
                // A sweep with no axes is a single-cell "sweep" of the base.
                1,
            )
    }

    /// The axis assignments of cell `index` (row-major, last axis fastest),
    /// as `(param, value)` pairs in axis order.
    pub fn cell_params(&self, index: usize) -> Vec<(String, Value)> {
        let mut rem = index;
        let mut rev: Vec<(String, Value)> = Vec::with_capacity(self.axes.len());
        for axis in self.axes.iter().rev() {
            let n = axis.values.len();
            rev.push((axis.param.clone(), axis.values[rem % n].clone()));
            rem /= n;
        }
        rev.reverse();
        rev
    }

    /// Materialize cell `index` as a full scenario.
    pub fn cell(&self, index: usize) -> Result<ScenarioSpec, SweepError> {
        let mut s = self.base.clone();
        for (param, value) in self.cell_params(index) {
            s.apply(&param, &value)
                .map_err(|e| SweepError(format!("cell {index}: {e}")))?;
        }
        Ok(s)
    }

    /// Materialize the whole grid in cell order.
    pub fn cells(&self) -> Result<Vec<ScenarioSpec>, SweepError> {
        (0..self.grid_size()).map(|i| self.cell(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_policy::PolicyKind;

    const SPEC: &str = r#"
        [sweep]
        name = "policy_x_cost"
        engine = "fast"
        seed = 7
        jobs = 400

        [axes]
        policy = ["formula3", "young", "daly", "none"]
        ckpt_cost_scale = { from = 0.5, to = 4.0, steps = 3 }
    "#;

    #[test]
    fn grid_size_is_product_of_axes() {
        let sweep = SweepSpec::from_str(SPEC).unwrap();
        assert_eq!(sweep.grid_size(), 12);
        assert_eq!(sweep.cells().unwrap().len(), 12);
    }

    #[test]
    fn last_axis_varies_fastest() {
        let sweep = SweepSpec::from_str(SPEC).unwrap();
        let c0 = sweep.cell(0).unwrap();
        let c1 = sweep.cell(1).unwrap();
        let c3 = sweep.cell(3).unwrap();
        assert_eq!(c0.policy, PolicyKind::Formula3);
        assert_eq!(c1.policy, PolicyKind::Formula3);
        assert_eq!(c3.policy, PolicyKind::Young);
        assert_eq!(c0.cost.ckpt_scale, 0.5);
        assert!((c1.cost.ckpt_scale - 2.25).abs() < 1e-12);
    }

    #[test]
    fn range_axes_linear_and_log() {
        let lin = expand_range(
            &[("from", 1.0), ("to", 5.0), ("steps", 5.0)]
                .iter()
                .map(|(k, v)| (k.to_string(), Value::Num(*v)))
                .collect(),
        )
        .unwrap();
        let vals: Vec<f64> = lin.iter().map(|v| v.as_num().unwrap()).collect();
        assert_eq!(vals, vec![1.0, 2.0, 3.0, 4.0, 5.0]);

        let mut t: std::collections::BTreeMap<String, Value> =
            [("from", 1.0), ("to", 16.0), ("steps", 5.0)]
                .iter()
                .map(|(k, v)| (k.to_string(), Value::Num(*v)))
                .collect();
        t.insert("log".into(), Value::Bool(true));
        let geo = expand_range(&t).unwrap();
        let vals: Vec<f64> = geo.iter().map(|v| v.as_num().unwrap()).collect();
        for (i, v) in vals.iter().enumerate() {
            assert!((v - 2f64.powi(i as i32)).abs() < 1e-9, "{vals:?}");
        }
    }

    #[test]
    fn no_axes_is_single_cell() {
        let sweep = SweepSpec::from_str("[sweep]\nname = \"one\"\n").unwrap();
        assert_eq!(sweep.grid_size(), 1);
        assert_eq!(sweep.cells().unwrap().len(), 1);
    }

    #[test]
    fn bad_axis_values_fail_at_parse_time() {
        let bad = r#"
            [axes]
            policy = ["formula3", "zebra"]
        "#;
        let e = SweepSpec::from_str(bad).unwrap_err();
        assert!(e.0.contains("zebra"), "{e}");

        let bad_range = r#"
            [axes]
            ckpt_cost_scale = { from = 1, to = 2 }
        "#;
        assert!(SweepSpec::from_str(bad_range).is_err());
    }

    #[test]
    fn unknown_sections_rejected() {
        assert!(SweepSpec::from_str("[wat]\nx = 1\n").is_err());
    }

    #[test]
    fn path_escaping_names_rejected() {
        for bad in ["grid/v2", "../x", "", "a b"] {
            let spec = format!("[sweep]\nname = \"{bad}\"\n");
            assert!(
                SweepSpec::from_str(&spec).is_err(),
                "name {bad:?} should be rejected"
            );
        }
        assert!(SweepSpec::from_str("[sweep]\nname = \"ok-1.2_x\"\n").is_ok());
    }

    #[test]
    fn nan_and_stray_infinities_rejected() {
        assert!(SweepSpec::from_str("[scenario]\nmax_task_length = nan\n").is_err());
        assert!(SweepSpec::from_str("[scenario]\nmax_task_length = infinity\n").is_err());
        assert!(SweepSpec::from_str("[scenario]\nmax_task_length = inf\n").is_ok());
    }

    #[test]
    fn snap_leaves_extreme_magnitudes_alone() {
        assert_eq!(snap(1e-300), 1e-300);
        assert_eq!(snap(1e250), 1e250);
        assert_eq!(snap(1.9999999999999998), 2.0);
    }

    #[test]
    fn preamble_keys_rejected_not_dropped() {
        // A seed set above the [sweep] header must error, not silently run
        // with the default seed.
        let e = SweepSpec::from_str("seed = 42\n[sweep]\nname = \"x\"\n").unwrap_err();
        assert!(e.0.contains("seed") && e.0.contains("[sweep]"), "{e}");
    }

    #[test]
    fn one_step_range_must_not_discard_to() {
        let bad = r#"
            [axes]
            ckpt_cost_scale = { from = 0.25, to = 8, steps = 1 }
        "#;
        let e = SweepSpec::from_str(bad).unwrap_err();
        assert!(e.0.contains("discard"), "{e}");
        // Degenerate but explicit single-point range is fine.
        let ok = r#"
            [axes]
            ckpt_cost_scale = { from = 2, to = 2, steps = 1 }
        "#;
        let sweep = SweepSpec::from_str(ok).unwrap();
        assert_eq!(sweep.grid_size(), 1);
    }

    #[test]
    fn base_sections_apply() {
        let s = SweepSpec::from_str(
            r#"
            [sweep]
            name = "n"
            jobs = 123
            [scenario]
            policy = "daly"
            [workload]
            bot_fraction = 0.9
            [cluster]
            n_hosts = 8
            "#,
        )
        .unwrap();
        assert_eq!(s.base.jobs, 123);
        assert_eq!(s.base.policy, PolicyKind::Daly);
        assert_eq!(s.base.workload.bot_fraction, Some(0.9));
        assert_eq!(s.base.cluster.n_hosts, 8);
    }
}
