//! # ckpt-faults — deterministic fault injection and retry policy
//!
//! The paper's premise is that long computations survive failures; this
//! crate lets the sweep executor *prove* it does, by injecting failures
//! on purpose. A [`FaultPlan`] is a small textual program parsed from
//! `--inject` / `CKPT_FAULT_PLAN` — e.g.
//!
//! ```text
//! panic@cell=17; io_error@write=5:kind=interrupted:times=2; crash@cells=9
//! ```
//!
//! — whose directives fire at *deterministic* points keyed to simulation
//! facts (grid cell index, store append ordinal), never to wall clock or
//! thread identity. [`FaultState`] is the armed, thread-safe runtime form
//! the executor consults at each injection point.
//!
//! The crate also owns the pieces of the fault-tolerance policy that are
//! shared between the executor and the store layer, so both sides agree
//! without a dependency cycle (this crate depends on nothing):
//!
//! * the **fault taxonomy** — which `io::ErrorKind`s are transient
//!   (worth retrying) vs fatal ([`is_transient_kind`]);
//! * the **retry budget and backoff schedule** — [`MAX_ATTEMPTS`]
//!   attempts per operation, sleeping [`backoff_delay`] between them,
//!   behind an injectable [`Clock`] so tests never really sleep;
//! * the **degraded-run summary** — [`RunHealth`], the cells-ok /
//!   retried / quarantined / io-retries / faults-fired report every
//!   sweep surfaces on stderr.
//!
//! Determinism rules: a plan with no directives injects nothing and the
//! run's output bytes are identical to a build without this crate; a plan
//! whose faults are all *eventually transient* (every fault fires fewer
//! times than the retry budget) perturbs only wall clock and stderr —
//! the exported CSV/JSON bytes still match a clean run at any thread
//! count.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::io::ErrorKind;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

/// Maximum attempts per guarded operation (one initial try plus
/// `MAX_ATTEMPTS - 1` retries). An operation still failing after this
/// many attempts is quarantined (cell evaluation) or escalated to a run
/// error (store I/O).
pub const MAX_ATTEMPTS: u32 = 4;

/// Backoff before retry number `retry` (0-based): 1 ms, then 5 ms, then
/// 25 ms — deterministic and bounded (the schedule is part of the fault
/// taxonomy contract, documented in ARCHITECTURE.md). Values are small
/// because the injected failures this guards against are either
/// synthetic (tests) or micro-transient (a store append racing a
/// filesystem hiccup); a cell replay costs milliseconds, so the whole
/// budget stays below one cell.
pub fn backoff_delay(retry: u32) -> Duration {
    Duration::from_millis(5u64.saturating_pow(retry.min(8)))
}

/// Classify an I/O error kind: transient kinds are worth retrying with
/// backoff, everything else is fatal on first sight. The transient set is
/// deliberately the "try again" family — interruption, contention,
/// timeout — not conditions a retry cannot cure (permissions, missing
/// files, corruption).
pub fn is_transient_kind(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
    )
}

/// Stable name for an I/O error kind — the spelling `--inject` accepts
/// and error messages echo.
pub fn io_kind_name(kind: ErrorKind) -> &'static str {
    match kind {
        ErrorKind::Interrupted => "interrupted",
        ErrorKind::WouldBlock => "would_block",
        ErrorKind::TimedOut => "timed_out",
        ErrorKind::NotFound => "not_found",
        ErrorKind::PermissionDenied => "permission_denied",
        ErrorKind::UnexpectedEof => "unexpected_eof",
        _ => "other",
    }
}

fn parse_io_kind(name: &str) -> Result<ErrorKind, String> {
    Ok(match name {
        "interrupted" => ErrorKind::Interrupted,
        "would_block" => ErrorKind::WouldBlock,
        "timed_out" => ErrorKind::TimedOut,
        "not_found" => ErrorKind::NotFound,
        "permission_denied" => ErrorKind::PermissionDenied,
        "unexpected_eof" => ErrorKind::UnexpectedEof,
        "other" => ErrorKind::Other,
        _ => {
            return Err(format!(
                "unknown io error kind {name:?} (expected interrupted, would_block, \
                 timed_out, not_found, permission_denied, unexpected_eof, or other)"
            ))
        }
    })
}

/// The store operation an `io_error` directive targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// A record append to the checkpoint store (`io_error@write=N`).
    Write,
    /// Opening/creating the checkpoint store (`io_error@open=N`).
    Open,
    /// Writing the sweep's CSV/JSON exports (`io_error@export=N`).
    Export,
}

impl IoOp {
    /// The operation's name in plan syntax and error messages.
    pub fn label(self) -> &'static str {
        match self {
            IoOp::Write => "write",
            IoOp::Open => "open",
            IoOp::Export => "export",
        }
    }
}

/// One parsed fault directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// `panic@cell=N[:times=T]` — panic inside cell `N`'s evaluation.
    /// Sticky by default (`times` = every attempt): a deterministic bug
    /// would repeat on retry, so the cell exhausts its budget and is
    /// quarantined. `times=1` makes it transient (the retry succeeds).
    Panic {
        /// Grid cell index the panic fires in.
        cell: u64,
        /// Attempts that panic before the fault disarms.
        times: u32,
    },
    /// `budget@cell=N[:times=T]` — cell `N`'s evaluation fails cleanly
    /// as if its simulation budget were exhausted. Sticky by default,
    /// like `panic`.
    Budget {
        /// Grid cell index the budget failure fires in.
        cell: u64,
        /// Attempts that fail before the fault disarms.
        times: u32,
    },
    /// `io_error@<op>=N[:kind=K][:times=T]` — starting at the `N`-th
    /// attempt of `<op>` (1-based), fail `T` consecutive attempts with an
    /// I/O error of kind `K` (default `interrupted`, `times=1` — a
    /// transient blip the retry cures).
    IoError {
        /// Which store operation fails.
        op: IoOp,
        /// 1-based operation ordinal the fault arms at.
        at: u64,
        /// The injected `io::ErrorKind`.
        kind: ErrorKind,
        /// Consecutive attempts that fail once armed.
        times: u32,
    },
    /// `torn_write@record=N` — the `N`-th store append (1-based) writes
    /// only half its frame and the process aborts, simulating a kill
    /// mid-`write_all`; the next open must truncate the torn tail and
    /// resume cleanly.
    TornWrite {
        /// 1-based append ordinal that tears.
        record: u64,
    },
    /// `crash@cells=N` — abort the process (exit code 86) once `N` cells
    /// have persisted: the generalized spelling of the historical
    /// `CKPT_CRASH_AFTER_CELLS` hook.
    Crash {
        /// Persisted-cell count that triggers the abort.
        cells: u64,
    },
}

/// A parsed, inert fault plan: what to inject and when. Arm it with
/// [`FaultState::new`] to get the runtime form the executor consults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The directives, in plan order (checked in order at each point).
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Parse a plan: `;`-separated directives of the form
    /// `kind@selector=N[:opt=val]*`. The empty string is the empty plan.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut faults = Vec::new();
        for raw in text.split(';') {
            let dir = raw.trim();
            if dir.is_empty() {
                continue;
            }
            faults.push(Self::parse_directive(dir).map_err(|e| format!("fault {dir:?}: {e}"))?);
        }
        Ok(FaultPlan { faults })
    }

    fn parse_directive(dir: &str) -> Result<FaultSpec, String> {
        let (kind, rest) = dir
            .split_once('@')
            .ok_or("expected <kind>@<selector>=<n>")?;
        let mut parts = rest.split(':');
        let selector = parts.next().unwrap_or_default();
        let (sel_key, sel_val) = selector
            .split_once('=')
            .ok_or("expected <selector>=<n> after @")?;
        let at: u64 = sel_val
            .parse()
            .map_err(|_| format!("selector {sel_key}: cannot parse {sel_val:?} as a count"))?;
        let mut io_kind: Option<ErrorKind> = None;
        let mut times: Option<u32> = None;
        for opt in parts {
            let (k, v) = opt
                .split_once('=')
                .ok_or_else(|| format!("option {opt:?}: expected key=value"))?;
            match k {
                "kind" => io_kind = Some(parse_io_kind(v)?),
                "times" => {
                    let t: u32 = v
                        .parse()
                        .map_err(|_| format!("times: cannot parse {v:?} as a count"))?;
                    if t == 0 {
                        return Err("times: must be >= 1".into());
                    }
                    times = Some(t);
                }
                _ => return Err(format!("unknown option {k:?} (expected kind or times)")),
            }
        }
        let expect_selector = |want: &str| -> Result<(), String> {
            if sel_key == want {
                Ok(())
            } else {
                Err(format!("{kind} selects by {want} (got {sel_key:?})"))
            }
        };
        let no_kind_opt = |k: Option<ErrorKind>| -> Result<(), String> {
            if k.is_none() {
                Ok(())
            } else {
                Err(format!("{kind} does not take a kind option"))
            }
        };
        match kind {
            "panic" => {
                expect_selector("cell")?;
                no_kind_opt(io_kind)?;
                Ok(FaultSpec::Panic {
                    cell: at,
                    times: times.unwrap_or(u32::MAX),
                })
            }
            "budget" => {
                expect_selector("cell")?;
                no_kind_opt(io_kind)?;
                Ok(FaultSpec::Budget {
                    cell: at,
                    times: times.unwrap_or(u32::MAX),
                })
            }
            "io_error" => {
                let op = match sel_key {
                    "write" => IoOp::Write,
                    "open" => IoOp::Open,
                    "export" => IoOp::Export,
                    _ => {
                        return Err(format!(
                            "io_error selects by write, open, or export (got {sel_key:?})"
                        ))
                    }
                };
                if at == 0 {
                    return Err("io_error ordinals are 1-based (got 0)".into());
                }
                Ok(FaultSpec::IoError {
                    op,
                    at,
                    kind: io_kind.unwrap_or(ErrorKind::Interrupted),
                    times: times.unwrap_or(1),
                })
            }
            "torn_write" => {
                expect_selector("record")?;
                no_kind_opt(io_kind)?;
                if times.is_some() {
                    return Err("torn_write does not take a times option".into());
                }
                if at == 0 {
                    return Err("torn_write ordinals are 1-based (got 0)".into());
                }
                Ok(FaultSpec::TornWrite { record: at })
            }
            "crash" => {
                expect_selector("cells")?;
                no_kind_opt(io_kind)?;
                if times.is_some() {
                    return Err("crash does not take a times option".into());
                }
                Ok(FaultSpec::Crash { cells: at })
            }
            _ => Err(format!(
                "unknown fault kind {kind:?} (expected panic, budget, io_error, \
                 torn_write, or crash)"
            )),
        }
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The `crash@cells=N` threshold, if the plan has one (first wins) —
    /// the executor feeds it to the same persisted-cell counter the
    /// `CKPT_CRASH_AFTER_CELLS` hook uses.
    pub fn crash_after_cells(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            FaultSpec::Crash { cells } => Some(*cells),
            _ => None,
        })
    }

    /// True when every fault is *eventually transient*: each directive
    /// fires fewer times than the retry budget allows, so a guarded run
    /// completes with every cell ok and outputs byte-identical to a
    /// clean run. `crash` and `torn_write` abort the process and are
    /// never transient.
    pub fn eventually_transient(&self) -> bool {
        self.faults.iter().all(|f| match f {
            FaultSpec::Panic { times, .. } | FaultSpec::Budget { times, .. } => {
                *times < MAX_ATTEMPTS
            }
            FaultSpec::IoError { times, .. } => *times < MAX_ATTEMPTS,
            FaultSpec::TornWrite { .. } | FaultSpec::Crash { .. } => false,
        })
    }
}

/// A cell-evaluation fault the executor must realize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellFault {
    /// Panic inside the evaluation (exercises `catch_unwind` isolation).
    Panic,
    /// Fail the evaluation cleanly with a budget-exhaustion error.
    Budget,
}

/// A store-append fault the store layer must realize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Fail the append with an I/O error of this kind (nothing written).
    Io(ErrorKind),
    /// Write half the frame, then abort the process (torn tail).
    Torn,
}

/// The clock behind retry backoff. Injectable so tests assert the
/// schedule without sleeping through it.
pub trait Clock: Send + Sync {
    /// Sleep for `d` (or just record it).
    fn sleep(&self, d: Duration);
}

/// The real clock: `std::thread::sleep`.
#[derive(Debug, Default)]
pub struct RealClock;

impl Clock for RealClock {
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A test clock that counts sleeps and sums requested durations instead
/// of sleeping.
#[derive(Debug, Default)]
pub struct TestClock {
    sleeps: AtomicU64,
    total_nanos: AtomicU64,
}

impl TestClock {
    /// Number of sleeps requested so far.
    pub fn sleeps(&self) -> u64 {
        self.sleeps.load(Ordering::Relaxed)
    }

    /// Total requested sleep time.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_nanos.load(Ordering::Relaxed))
    }
}

impl Clock for TestClock {
    fn sleep(&self, d: Duration) {
        self.sleeps.fetch_add(1, Ordering::Relaxed);
        self.total_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// One armed directive: its spec plus how many times it has fired.
#[derive(Debug)]
struct Armed {
    spec: FaultSpec,
    fired: AtomicU32,
}

impl Armed {
    /// Fire if `fired < times`, returning whether this call fired.
    fn try_fire(&self, times: u32) -> bool {
        // fetch_update keeps the count exact under concurrent attempts.
        self.fired
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < times).then_some(n + 1)
            })
            .is_ok()
    }
}

/// The armed, thread-safe runtime form of a [`FaultPlan`]: ordinal
/// counters for store operations, per-directive fire counts, and the
/// backoff clock. One `FaultState` serves a whole run, shared across
/// workers behind an `Arc`.
pub struct FaultState {
    armed: Vec<Armed>,
    writes: AtomicU64,
    opens: AtomicU64,
    exports: AtomicU64,
    clock: Box<dyn Clock>,
}

impl std::fmt::Debug for FaultState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultState")
            .field("armed", &self.armed)
            .field("fired_total", &self.fired_total())
            .finish_non_exhaustive()
    }
}

impl Default for FaultState {
    fn default() -> Self {
        FaultState::new(FaultPlan::default())
    }
}

impl FaultState {
    /// Arm a plan with the real clock.
    pub fn new(plan: FaultPlan) -> FaultState {
        FaultState::with_clock(plan, Box::new(RealClock))
    }

    /// Arm a plan with an injected clock (tests).
    pub fn with_clock(plan: FaultPlan, clock: Box<dyn Clock>) -> FaultState {
        FaultState {
            armed: plan
                .faults
                .into_iter()
                .map(|spec| Armed {
                    spec,
                    fired: AtomicU32::new(0),
                })
                .collect(),
            writes: AtomicU64::new(0),
            opens: AtomicU64::new(0),
            exports: AtomicU64::new(0),
            clock,
        }
    }

    /// True when no directives are armed (the no-fault fast path).
    pub fn is_empty(&self) -> bool {
        self.armed.is_empty()
    }

    /// The plan's `crash@cells=N` threshold, if any.
    pub fn crash_after_cells(&self) -> Option<u64> {
        self.armed.iter().find_map(|a| match a.spec {
            FaultSpec::Crash { cells } => Some(cells),
            _ => None,
        })
    }

    /// Total faults fired so far (the `faults_injected` counter).
    /// `crash` directives are counted by the executor's crash hook at
    /// abort time, so they never show up here.
    pub fn fired_total(&self) -> u64 {
        self.armed
            .iter()
            .map(|a| a.fired.load(Ordering::Relaxed) as u64)
            .sum()
    }

    /// Consult the plan at the start of one evaluation attempt of `cell`.
    /// At most one directive fires per attempt (plan order decides ties).
    pub fn cell_fault(&self, cell: u64) -> Option<CellFault> {
        for a in &self.armed {
            match a.spec {
                FaultSpec::Panic { cell: c, times } if c == cell && a.try_fire(times) => {
                    return Some(CellFault::Panic);
                }
                FaultSpec::Budget { cell: c, times } if c == cell && a.try_fire(times) => {
                    return Some(CellFault::Budget);
                }
                _ => {}
            }
        }
        None
    }

    /// Consult the plan before one store-append attempt. Each call
    /// advances the append ordinal; an `io_error@write=N` directive arms
    /// at ordinal `N` and fires for its `times` consecutive attempts
    /// (so `times=2` fails the append *and* its first retry).
    pub fn store_write_fault(&self) -> Option<WriteFault> {
        let ordinal = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        for a in &self.armed {
            match a.spec {
                FaultSpec::TornWrite { record } if record == ordinal && a.try_fire(1) => {
                    return Some(WriteFault::Torn);
                }
                FaultSpec::IoError {
                    op: IoOp::Write,
                    at,
                    kind,
                    times,
                } if ordinal >= at && a.try_fire(times) => {
                    return Some(WriteFault::Io(kind));
                }
                _ => {}
            }
        }
        None
    }

    /// Consult the plan before one store-open attempt (same arming rule
    /// as [`FaultState::store_write_fault`], on the open ordinal).
    pub fn store_open_fault(&self) -> Option<ErrorKind> {
        let ordinal = self.opens.fetch_add(1, Ordering::Relaxed) + 1;
        self.io_fault_at(IoOp::Open, ordinal)
    }

    /// Consult the plan before one export-write attempt.
    pub fn export_fault(&self) -> Option<ErrorKind> {
        let ordinal = self.exports.fetch_add(1, Ordering::Relaxed) + 1;
        self.io_fault_at(IoOp::Export, ordinal)
    }

    fn io_fault_at(&self, want: IoOp, ordinal: u64) -> Option<ErrorKind> {
        for a in &self.armed {
            if let FaultSpec::IoError {
                op,
                at,
                kind,
                times,
            } = a.spec
            {
                if op == want && ordinal >= at && a.try_fire(times) {
                    return Some(kind);
                }
            }
        }
        None
    }

    /// Sleep the backoff before retry number `retry` (0-based) through
    /// the armed clock.
    pub fn sleep_backoff(&self, retry: u32) {
        self.clock.sleep(backoff_delay(retry));
    }
}

/// The degraded-run summary every guarded sweep reports: how many cells
/// succeeded, how much retrying it took, and whether anything was
/// quarantined. Counts are simulation facts (thread-invariant for
/// cell-keyed faults; retry totals are exact for any schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunHealth {
    /// Cells that evaluated successfully (including after retries).
    pub cells_ok: u64,
    /// Cells quarantined after exhausting the retry budget.
    pub cells_quarantined: u64,
    /// Cell-evaluation retry attempts across the run.
    pub cell_retries: u64,
    /// Store/export I/O retry attempts across the run.
    pub io_retries: u64,
    /// Faults the plan actually fired.
    pub faults_injected: u64,
}

impl RunHealth {
    /// True when at least one cell was quarantined.
    pub fn degraded(&self) -> bool {
        self.cells_quarantined > 0
    }

    /// The one-line stderr summary.
    pub fn summary(&self) -> String {
        format!(
            "{} cell{} ok, {} quarantined, {} cell retr{}, {} io retr{}, {} fault{} injected",
            self.cells_ok,
            if self.cells_ok == 1 { "" } else { "s" },
            self.cells_quarantined,
            self.cell_retries,
            if self.cell_retries == 1 { "y" } else { "ies" },
            self.io_retries,
            if self.io_retries == 1 { "y" } else { "ies" },
            self.faults_injected,
            if self.faults_injected == 1 { "" } else { "s" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_parses_and_injects_nothing() {
        for text in ["", "  ", ";", " ; "] {
            let plan = FaultPlan::parse(text).unwrap();
            assert!(plan.is_empty(), "{text:?}");
            let state = FaultState::new(plan);
            assert!(state.is_empty());
            assert_eq!(state.cell_fault(0), None);
            assert_eq!(state.store_write_fault(), None);
            assert_eq!(state.store_open_fault(), None);
            assert_eq!(state.export_fault(), None);
            assert_eq!(state.fired_total(), 0);
        }
    }

    #[test]
    fn the_issue_examples_parse() {
        let plan = FaultPlan::parse(
            "panic@cell=17; io_error@write=5:kind=interrupted:times=2; \
             torn_write@record=9; budget@cell=3; crash@cells=9",
        )
        .unwrap();
        assert_eq!(
            plan.faults,
            vec![
                FaultSpec::Panic {
                    cell: 17,
                    times: u32::MAX
                },
                FaultSpec::IoError {
                    op: IoOp::Write,
                    at: 5,
                    kind: ErrorKind::Interrupted,
                    times: 2
                },
                FaultSpec::TornWrite { record: 9 },
                FaultSpec::Budget {
                    cell: 3,
                    times: u32::MAX
                },
                FaultSpec::Crash { cells: 9 },
            ]
        );
        assert_eq!(plan.crash_after_cells(), Some(9));
        assert!(!plan.eventually_transient());
    }

    #[test]
    fn parse_errors_name_the_directive() {
        for (text, needle) in [
            ("panic", "expected <kind>@<selector>"),
            ("panic@cell", "expected <selector>=<n>"),
            ("panic@write=3", "panic selects by cell"),
            ("panic@cell=x", "cannot parse"),
            ("panic@cell=3:times=0", "must be >= 1"),
            ("panic@cell=3:kind=interrupted", "does not take a kind"),
            (
                "io_error@cell=3",
                "io_error selects by write, open, or export",
            ),
            ("io_error@write=0", "1-based"),
            ("io_error@write=3:kind=lunar", "unknown io error kind"),
            ("torn_write@record=2:times=2", "does not take a times"),
            ("crash@cells=3:times=2", "does not take a times"),
            ("meteor@cell=3", "unknown fault kind"),
            ("panic@cell=3:color=red", "unknown option"),
        ] {
            let err = FaultPlan::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text:?}: {err}");
            assert!(
                err.contains(text.split(';').next().unwrap().trim()),
                "{err}"
            );
        }
    }

    #[test]
    fn cell_faults_fire_exactly_times_then_disarm() {
        let plan = FaultPlan::parse("panic@cell=2:times=2; budget@cell=5:times=1").unwrap();
        assert!(plan.eventually_transient());
        let state = FaultState::new(plan);
        assert_eq!(state.cell_fault(0), None);
        assert_eq!(state.cell_fault(2), Some(CellFault::Panic));
        assert_eq!(state.cell_fault(2), Some(CellFault::Panic));
        assert_eq!(state.cell_fault(2), None, "two times, then disarmed");
        assert_eq!(state.cell_fault(5), Some(CellFault::Budget));
        assert_eq!(state.cell_fault(5), None);
        assert_eq!(state.fired_total(), 3);
    }

    #[test]
    fn sticky_panic_outlasts_the_retry_budget() {
        let plan = FaultPlan::parse("panic@cell=1").unwrap();
        assert!(!plan.eventually_transient());
        let state = FaultState::new(plan);
        for _ in 0..MAX_ATTEMPTS + 2 {
            assert_eq!(state.cell_fault(1), Some(CellFault::Panic));
        }
    }

    #[test]
    fn write_faults_arm_at_ordinal_and_fire_consecutively() {
        let plan = FaultPlan::parse("io_error@write=3:times=2").unwrap();
        let state = FaultState::new(plan);
        assert_eq!(state.store_write_fault(), None); // 1
        assert_eq!(state.store_write_fault(), None); // 2
        assert_eq!(
            state.store_write_fault(),
            Some(WriteFault::Io(ErrorKind::Interrupted)) // 3: armed
        );
        assert_eq!(
            state.store_write_fault(),
            Some(WriteFault::Io(ErrorKind::Interrupted)) // 4: the retry
        );
        assert_eq!(state.store_write_fault(), None); // 5: disarmed
        assert_eq!(state.fired_total(), 2);
    }

    #[test]
    fn torn_write_fires_once_at_its_exact_ordinal() {
        let plan = FaultPlan::parse("torn_write@record=2").unwrap();
        let state = FaultState::new(plan);
        assert_eq!(state.store_write_fault(), None);
        assert_eq!(state.store_write_fault(), Some(WriteFault::Torn));
        assert_eq!(state.store_write_fault(), None);
    }

    #[test]
    fn open_and_export_ordinals_are_independent() {
        let plan = FaultPlan::parse("io_error@open=1:kind=timed_out; io_error@export=2:kind=other")
            .unwrap();
        let state = FaultState::new(plan);
        assert_eq!(state.export_fault(), None); // export ordinal 1
        assert_eq!(state.store_open_fault(), Some(ErrorKind::TimedOut));
        assert_eq!(state.export_fault(), Some(ErrorKind::Other)); // ordinal 2
        assert_eq!(state.store_open_fault(), None);
    }

    #[test]
    fn transiency_classification() {
        assert!(is_transient_kind(ErrorKind::Interrupted));
        assert!(is_transient_kind(ErrorKind::WouldBlock));
        assert!(is_transient_kind(ErrorKind::TimedOut));
        assert!(!is_transient_kind(ErrorKind::PermissionDenied));
        assert!(!is_transient_kind(ErrorKind::NotFound));
        assert!(!is_transient_kind(ErrorKind::Other));
    }

    #[test]
    fn backoff_schedule_is_bounded_and_monotone() {
        let d: Vec<Duration> = (0..MAX_ATTEMPTS - 1).map(backoff_delay).collect();
        assert_eq!(
            d,
            vec![
                Duration::from_millis(1),
                Duration::from_millis(5),
                Duration::from_millis(25)
            ]
        );
        // Saturates instead of overflowing for absurd retry numbers.
        assert!(backoff_delay(100) >= backoff_delay(99));
    }

    #[test]
    fn test_clock_records_instead_of_sleeping() {
        let plan = FaultPlan::parse("panic@cell=0:times=1").unwrap();
        let clock = std::sync::Arc::new(TestClock::default());
        struct Fwd(std::sync::Arc<TestClock>);
        impl Clock for Fwd {
            fn sleep(&self, d: Duration) {
                self.0.sleep(d);
            }
        }
        let state = FaultState::with_clock(plan, Box::new(Fwd(clock.clone())));
        state.sleep_backoff(0);
        state.sleep_backoff(1);
        assert_eq!(clock.sleeps(), 2);
        assert_eq!(clock.total(), Duration::from_millis(6));
    }

    #[test]
    fn health_summary_reads_like_a_sentence() {
        let h = RunHealth {
            cells_ok: 23,
            cells_quarantined: 1,
            cell_retries: 3,
            io_retries: 2,
            faults_injected: 6,
        };
        assert!(h.degraded());
        assert_eq!(
            h.summary(),
            "23 cells ok, 1 quarantined, 3 cell retries, 2 io retries, 6 faults injected"
        );
        assert!(!RunHealth::default().degraded());
    }
}
